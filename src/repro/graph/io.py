"""Graph persistence: edge lists, JSON, and community sidecars.

Formats
-------
* **Edge list** (``.edges``): one ``tail head`` pair per line, ``#``
  comments allowed — the format SNAP distributes the paper's datasets in,
  so a user with the real Enron/Hep files can load them directly.
* **JSON** (``.json``): ``{"name", "nodes", "edges"}`` with explicit
  isolated nodes — lossless round-trip including weights.
* **Community file** (``.communities``): ``node community_id`` per line, a
  sidecar for :class:`repro.community.structure.CommunityStructure`.

All readers accept paths or open text handles; all node labels in text
formats are strings unless ``node_type`` converts them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, IO, Union

from repro.errors import DatasetError
from repro.graph.digraph import DiGraph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_json",
    "read_json",
    "write_communities",
    "read_communities",
]

PathOrHandle = Union[str, Path, IO[str]]


class _Opened:
    """Context manager that opens paths and passes handles through."""

    def __init__(self, target: PathOrHandle, mode: str) -> None:
        self._target = target
        self._mode = mode
        self._owned: bool = isinstance(target, (str, Path))
        self._handle: IO[str] = None  # type: ignore[assignment]

    def __enter__(self) -> IO[str]:
        if self._owned:
            self._handle = open(self._target, self._mode, encoding="utf-8")
        else:
            self._handle = self._target  # type: ignore[assignment]
        return self._handle

    def __exit__(self, *exc_info: object) -> None:
        if self._owned:
            self._handle.close()


def write_edge_list(graph: DiGraph, target: PathOrHandle) -> None:
    """Write ``tail head`` lines (SNAP-style), with a header comment."""
    with _Opened(target, "w") as handle:
        handle.write(f"# repro edge list: {graph.name or 'unnamed'}\n")
        handle.write(f"# nodes: {graph.node_count} edges: {graph.edge_count}\n")
        for tail, head in graph.edges():
            handle.write(f"{tail} {head}\n")


def read_edge_list(
    source: PathOrHandle,
    node_type: Callable[[str], object] = int,
    name: str = "",
) -> DiGraph:
    """Read a SNAP-style edge list (``#`` comments skipped).

    Args:
        source: path or open handle.
        node_type: converter applied to each token (default ``int``; SNAP
            files use integer ids).
        name: name for the resulting graph.
    """
    graph = DiGraph(name=name)
    with _Opened(source, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) != 2:
                raise DatasetError(
                    f"line {line_number}: expected 'tail head', got {text!r}"
                )
            try:
                tail, head = node_type(parts[0]), node_type(parts[1])
            except (TypeError, ValueError) as exc:
                raise DatasetError(f"line {line_number}: bad node token ({exc})")
            graph.add_edge(tail, head)
    return graph


def write_json(graph: DiGraph, target: PathOrHandle) -> None:
    """Write a lossless JSON document (nodes, weighted edges, name)."""
    document = {
        "name": graph.name,
        "nodes": list(graph.nodes()),
        "edges": [[tail, head, weight] for tail, head, weight in graph.weighted_edges()],
    }
    with _Opened(target, "w") as handle:
        json.dump(document, handle)


def read_json(source: PathOrHandle) -> DiGraph:
    """Read a graph written by :func:`write_json`."""
    with _Opened(source, "r") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"invalid graph JSON: {exc}") from exc
    for key in ("name", "nodes", "edges"):
        if key not in document:
            raise DatasetError(f"graph JSON missing key {key!r}")
    graph = DiGraph(name=document["name"])
    # JSON keys/labels survive as-is; lists (from tuples) become lists, so
    # labels must be scalars — enforced here.
    for node in document["nodes"]:
        if isinstance(node, (list, dict)):
            raise DatasetError(f"non-scalar node label in JSON: {node!r}")
        graph.add_node(node)
    for entry in document["edges"]:
        if len(entry) != 3:
            raise DatasetError(f"bad edge entry in JSON: {entry!r}")
        tail, head, weight = entry
        graph.add_edge(tail, head, float(weight))
    return graph


def write_communities(membership: Dict[object, int], target: PathOrHandle) -> None:
    """Write a ``node community_id`` sidecar file."""
    with _Opened(target, "w") as handle:
        handle.write("# repro community membership\n")
        for node, community_id in membership.items():
            handle.write(f"{node} {community_id}\n")


def read_communities(
    source: PathOrHandle,
    node_type: Callable[[str], object] = int,
) -> Dict[object, int]:
    """Read a sidecar written by :func:`write_communities`."""
    membership: Dict[object, int] = {}
    with _Opened(source, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) != 2:
                raise DatasetError(
                    f"line {line_number}: expected 'node community', got {text!r}"
                )
            try:
                membership[node_type(parts[0])] = int(parts[1])
            except (TypeError, ValueError) as exc:
                raise DatasetError(f"line {line_number}: bad token ({exc})")
    return membership
