"""Weighted shortest paths (Dijkstra) and path reconstruction.

The paper's models are hop-based, but the graph engine carries edge
weights (used by Louvain and available to users modelling tie strength);
this module completes the substrate with weighted distances, so a user can
e.g. rank protector candidates by weighted proximity instead of hops.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph, Node

__all__ = ["dijkstra", "shortest_weighted_path", "weighted_eccentricity"]


def dijkstra(
    graph: DiGraph,
    sources: Iterable[Node],
    reverse: bool = False,
    cutoff: Optional[float] = None,
) -> Tuple[Dict[Node, float], Dict[Node, Optional[Node]]]:
    """Multi-source Dijkstra over edge weights.

    Args:
        graph: weighted digraph (weights are validated > 0 on insertion).
        sources: starting nodes (distance 0).
        reverse: traverse in-edges instead of out-edges.
        cutoff: stop expanding beyond this distance.

    Returns:
        ``(distances, parents)``; unreachable nodes are absent, sources
        have parent ``None``.
    """
    source_list = list(dict.fromkeys(sources))
    if not source_list:
        raise ValueError("dijkstra needs at least one source")
    for source in source_list:
        if source not in graph:
            raise NodeNotFoundError(source)

    distances: Dict[Node, float] = {}
    parents: Dict[Node, Optional[Node]] = {}
    counter = 0  # tie-breaker keeps heap entries comparable for any Node type
    heap: List[Tuple[float, int, Node, Optional[Node]]] = []
    for source in source_list:
        heapq.heappush(heap, (0.0, counter, source, None))
        counter += 1

    while heap:
        distance, _, node, parent = heapq.heappop(heap)
        if node in distances:
            continue
        if cutoff is not None and distance > cutoff:
            continue
        distances[node] = distance
        parents[node] = parent
        if reverse:
            neighbors = [
                (tail, graph.edge_weight(tail, node))
                for tail in graph.predecessors(node)
            ]
        else:
            neighbors = [
                (head, graph.edge_weight(node, head))
                for head in graph.successors(node)
            ]
        for neighbor, weight in neighbors:
            if neighbor not in distances:
                heapq.heappush(heap, (distance + weight, counter, neighbor, node))
                counter += 1
    return distances, parents


def shortest_weighted_path(
    graph: DiGraph, source: Node, target: Node
) -> Optional[List[Node]]:
    """Minimum-weight directed path ``source -> ... -> target``, or ``None``."""
    if target not in graph:
        raise NodeNotFoundError(target)
    distances, parents = dijkstra(graph, [source])
    if target not in distances:
        return None
    path: List[Node] = []
    current: Optional[Node] = target
    while current is not None:
        path.append(current)
        current = parents[current]
    path.reverse()
    return path


def weighted_eccentricity(graph: DiGraph, node: Node) -> float:
    """Largest finite weighted distance from ``node`` (0.0 if isolated)."""
    distances, _ = dijkstra(graph, [node])
    others = [d for n, d in distances.items() if n != node]
    return max(others) if others else 0.0
