"""Random-graph generators.

These are the substrate for the synthetic dataset replicas
(:mod:`repro.datasets.synthetic`): the paper's experiments need directed
networks with (a) community structure — dense inside, sparse across
(Section IV) — and (b) heavy-tailed degrees, since both real datasets are
social/collaboration networks.

Provided models:

* :func:`erdos_renyi` — G(n, p) baseline.
* :func:`barabasi_albert` — preferential attachment (heavy-tailed degrees).
* :func:`watts_strogatz` — small-world ring rewiring.
* :func:`planted_partition` — stochastic block model with equal intra/inter
  probabilities per side; ground-truth communities for testing detection.
* :func:`powerlaw_community_digraph` — the workhorse: heavy-tailed
  community sizes *and* node degrees with a controlled inter-community
  mixing fraction.

All generators take an :class:`repro.rng.RngStream` and are fully
deterministic given it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.graph.digraph import DiGraph
from repro.rng import RngStream
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "planted_partition",
    "powerlaw_sizes",
    "powerlaw_community_digraph",
    "forest_fire",
]


def erdos_renyi(
    n: int, p: float, rng: RngStream, directed: bool = True, name: str = "er"
) -> DiGraph:
    """G(n, p): every ordered pair (u, v), u != v, is an edge w.p. ``p``.

    With ``directed=False`` each unordered pair is drawn once and added in
    both directions.
    """
    check_positive(n, "n")
    check_probability(p, "p")
    graph = DiGraph(name=name)
    graph.add_nodes(range(n))
    for u in range(n):
        start = u + 1 if not directed else 0
        for v in range(start, n):
            if u == v:
                continue
            if rng.random() < p:
                if directed:
                    graph.add_edge(u, v)
                else:
                    graph.add_symmetric_edge(u, v)
    return graph


def barabasi_albert(
    n: int, m: int, rng: RngStream, name: str = "ba"
) -> DiGraph:
    """Preferential attachment: each new node attaches to ``m`` targets.

    Targets are sampled proportionally to degree via the repeated-nodes
    trick. Edges are added symmetrically (the classic BA model is
    undirected).
    """
    check_positive(n, "n")
    check_positive(m, "m")
    if m >= n:
        raise ValidationError(f"m ({m}) must be < n ({n})")
    graph = DiGraph(name=name)
    graph.add_nodes(range(n))
    # Seed clique of m+1 nodes so every new node has m distinct targets.
    repeated: List[int] = []
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            graph.add_symmetric_edge(u, v)
            repeated.extend((u, v))
    for new_node in range(m + 1, n):
        targets: set = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for target in targets:
            graph.add_symmetric_edge(new_node, target)
            repeated.extend((new_node, target))
    return graph


def watts_strogatz(
    n: int, k: int, beta: float, rng: RngStream, name: str = "ws"
) -> DiGraph:
    """Small-world ring lattice with rewiring probability ``beta``.

    Each node connects to its ``k`` nearest ring neighbors (``k`` even);
    each lattice edge is rewired to a random target w.p. ``beta``. Edges
    are symmetric.
    """
    check_positive(n, "n")
    check_positive(k, "k")
    check_probability(beta, "beta")
    if k % 2 != 0:
        raise ValidationError(f"k must be even, got {k}")
    if k >= n:
        raise ValidationError(f"k ({k}) must be < n ({n})")
    graph = DiGraph(name=name)
    graph.add_nodes(range(n))
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if rng.random() < beta:
                candidates = [w for w in range(n) if w != u and not graph.has_edge(u, w)]
                if candidates:
                    v = rng.choice(candidates)
            if not graph.has_edge(u, v):
                graph.add_symmetric_edge(u, v)
    return graph


def planted_partition(
    sizes: Sequence[int],
    p_in: float,
    p_out: float,
    rng: RngStream,
    directed: bool = True,
    name: str = "planted",
) -> Tuple[DiGraph, Dict[int, int]]:
    """Stochastic block model with planted ground-truth communities.

    Args:
        sizes: community sizes; nodes are numbered consecutively block by
            block.
        p_in: edge probability inside a block.
        p_out: edge probability across blocks.
        rng: random stream.
        directed: draw each ordered pair independently; otherwise draw
            unordered pairs and symmetrise.

    Returns:
        ``(graph, membership)`` where ``membership[node]`` is the planted
        community id.
    """
    check_probability(p_in, "p_in")
    check_probability(p_out, "p_out")
    if not sizes or any(s <= 0 for s in sizes):
        raise ValidationError(f"sizes must be positive, got {sizes!r}")
    membership: Dict[int, int] = {}
    node = 0
    for community_id, size in enumerate(sizes):
        for _ in range(size):
            membership[node] = community_id
            node += 1
    n = node
    graph = DiGraph(name=name)
    graph.add_nodes(range(n))
    for u in range(n):
        start = 0 if directed else u + 1
        for v in range(start, n):
            if u == v:
                continue
            p = p_in if membership[u] == membership[v] else p_out
            if rng.random() < p:
                if directed:
                    graph.add_edge(u, v)
                else:
                    graph.add_symmetric_edge(u, v)
    return graph, membership


def powerlaw_sizes(
    total: int,
    count: int,
    rng: RngStream,
    exponent: float = 1.6,
    minimum: int = 3,
) -> List[int]:
    """Draw ``count`` heavy-tailed sizes summing exactly to ``total``.

    Sizes are Pareto draws rescaled to the target sum; the largest
    communities absorb the rounding residue. Mirrors the broad community-size
    distribution of real social networks ([28] in the paper).
    """
    check_positive(total, "total")
    check_positive(count, "count")
    if count * minimum > total:
        raise ValidationError(
            f"cannot fit {count} communities of size >= {minimum} into {total} nodes"
        )
    raw = [rng.paretovariate(exponent) for _ in range(count)]
    scale = (total - count * minimum) / sum(raw)
    sizes = [minimum + int(value * scale) for value in raw]
    deficit = total - sum(sizes)
    # Distribute the rounding residue to the largest communities.
    order = sorted(range(count), key=lambda i: -sizes[i])
    index = 0
    while deficit > 0:
        sizes[order[index % count]] += 1
        deficit -= 1
        index += 1
    return sizes


def forest_fire(
    n: int,
    forward_prob: float,
    backward_prob: float,
    rng: RngStream,
    name: str = "ff",
) -> DiGraph:
    """Leskovec et al.'s Forest Fire model ([27], the paper's dataset
    source for graph-evolution properties).

    Each arriving node links to a uniformly chosen ambassador and then
    "burns" outward: from every newly burned node it follows a
    geometrically distributed number of out-links (mean
    ``forward_prob / (1 - forward_prob)``) and in-links (scaled by
    ``backward_prob``), linking to everything burned. Produces densifying,
    heavy-tailed, community-ish digraphs.

    Args:
        n: number of nodes.
        forward_prob: forward burning probability ``p`` in (0, 1).
        backward_prob: backward burning ratio ``r`` in [0, 1).
        rng: random stream.
    """
    check_positive(n, "n")
    check_probability(forward_prob, "forward_prob")
    check_probability(backward_prob, "backward_prob")
    if forward_prob >= 1.0:
        raise ValidationError("forward_prob must be < 1 for the fire to die out")
    graph = DiGraph(name=name)
    graph.add_node(0)

    def geometric(p: float) -> int:
        """Number of successes before failure: mean p / (1 - p)."""
        if p <= 0.0:
            return 0
        count = 0
        while rng.random() < p and count < n:
            count += 1
        return count

    for new_node in range(1, n):
        graph.add_node(new_node)
        ambassador = rng.randrange(new_node)
        burned = {ambassador}
        frontier = [ambassador]
        graph.add_edge(new_node, ambassador)
        while frontier:
            node = frontier.pop()
            out_links = [v for v in graph.successors(node) if v not in burned and v != new_node]
            in_links = [v for v in graph.predecessors(node) if v not in burned and v != new_node]
            rng.shuffle(out_links)
            rng.shuffle(in_links)
            take_out = min(geometric(forward_prob), len(out_links))
            take_in = min(geometric(forward_prob * backward_prob), len(in_links))
            for target in out_links[:take_out] + in_links[:take_in]:
                burned.add(target)
                frontier.append(target)
                graph.add_edge(new_node, target)
    return graph


def _weighted_index(cumulative: Sequence[float], rng: RngStream) -> int:
    """Sample an index proportional to the gaps of a cumulative-sum table."""
    target = rng.random() * cumulative[-1]
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] <= target:
            lo = mid + 1
        else:
            hi = mid
    return lo


def powerlaw_community_digraph(
    n: int,
    avg_degree: float,
    mixing: float,
    rng: RngStream,
    n_communities: Optional[int] = None,
    size_exponent: float = 1.6,
    weight_exponent: float = 2.5,
    symmetric: bool = False,
    name: str = "plc",
) -> Tuple[DiGraph, Dict[int, int]]:
    """Directed community graph with heavy-tailed sizes and degrees.

    The generator fixes the directed-edge budget ``m = round(n *
    avg_degree)`` (the paper reports average degree as edges/nodes:
    367662/36692 ≈ 10.0) and splits it into an intra-community share
    ``(1 - mixing) * m`` and an inter-community share ``mixing * m``.
    Endpoints are sampled proportionally to per-node Pareto attractiveness
    weights, producing heavy-tailed in/out degrees.

    Args:
        n: number of nodes.
        avg_degree: target directed edges per node.
        mixing: fraction of edges crossing community boundaries (small =
            strong community structure; the paper's premise).
        rng: random stream.
        n_communities: number of communities; default ``max(4, n // 120)``.
        size_exponent: Pareto shape for community sizes.
        weight_exponent: Pareto shape for node attractiveness (degree tail).
        symmetric: add each sampled edge in both directions (collaboration
            networks such as Hep are undirected and then symmetrised —
            Section VI.A.2).

    Returns:
        ``(graph, membership)``.
    """
    check_positive(n, "n")
    check_positive(avg_degree, "avg_degree")
    check_probability(mixing, "mixing")
    if n_communities is None:
        n_communities = max(4, n // 120)
    sizes = powerlaw_sizes(n, n_communities, rng.fork("sizes"), exponent=size_exponent)

    membership: Dict[int, int] = {}
    members: List[List[int]] = []
    node = 0
    for community_id, size in enumerate(sizes):
        block = list(range(node, node + size))
        members.append(block)
        for member in block:
            membership[member] = community_id
        node += size

    graph = DiGraph(name=name)
    graph.add_nodes(range(n))

    weights = [rng.paretovariate(weight_exponent - 1.0) for _ in range(n)]

    # Cumulative weight tables: one per community and one global.
    community_cumulative: List[List[float]] = []
    for block in members:
        running, table = 0.0, []
        for member in block:
            running += weights[member]
            table.append(running)
        community_cumulative.append(table)
    global_cumulative: List[float] = []
    running = 0.0
    for u in range(n):
        running += weights[u]
        global_cumulative.append(running)
    community_mass = [table[-1] for table in community_cumulative]
    community_mass_cumulative: List[float] = []
    running = 0.0
    for mass in community_mass:
        running += mass
        community_mass_cumulative.append(running)

    m_total = int(round(n * avg_degree))
    if symmetric:
        m_total //= 2  # each sampled pair contributes two directed edges
    m_inter = int(round(m_total * mixing))
    m_intra = m_total - m_inter

    def add(u: int, v: int) -> bool:
        if u == v or graph.has_edge(u, v):
            return False
        if symmetric:
            graph.add_symmetric_edge(u, v)
        else:
            graph.add_edge(u, v)
        return True

    max_attempts = 50 * m_total + 1000
    attempts = 0
    added_intra = 0
    while added_intra < m_intra and attempts < max_attempts:
        attempts += 1
        community_id = _weighted_index(community_mass_cumulative, rng)
        block = members[community_id]
        if len(block) < 2:
            continue
        table = community_cumulative[community_id]
        u = block[_weighted_index(table, rng)]
        v = block[_weighted_index(table, rng)]
        if add(u, v):
            added_intra += 1

    added_inter = 0
    while added_inter < m_inter and attempts < max_attempts:
        attempts += 1
        u = _weighted_index(global_cumulative, rng)
        v = _weighted_index(global_cumulative, rng)
        if membership[u] == membership[v]:
            continue
        if add(u, v):
            added_inter += 1

    return graph, membership
