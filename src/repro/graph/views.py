"""Live set-like views over a graph's nodes, edges, and degrees.

Ergonomics layer: the views stay attached to the graph (reflecting later
mutations) and behave as real sets, so callers can intersect node sets
with communities, diff edge sets between graphs, and sort by degree
without materialising copies::

    risky = graph.nodes_view() & communities.members(rumor_cid)
    new_edges = mutated.edges_view() - original.edges_view()
    hubs = sorted(graph.degree_view("out"), key=lambda kv: -kv[1])[:10]
"""

from __future__ import annotations

from collections.abc import Mapping, Set
from typing import Iterator, Tuple

from repro.graph.digraph import DiGraph, Edge, Node

__all__ = ["NodeView", "EdgeView", "DegreeView"]


class NodeView(Set):
    """Set-like live view of a graph's nodes."""

    __slots__ = ("_graph",)

    def __init__(self, graph: DiGraph) -> None:
        self._graph = graph

    def __contains__(self, node: object) -> bool:
        try:
            return node in self._graph
        except TypeError:
            return False

    def __iter__(self) -> Iterator[Node]:
        return iter(self._graph.nodes())

    def __len__(self) -> int:
        return self._graph.node_count

    @classmethod
    def _from_iterable(cls, iterable):
        # Set operations return plain frozensets, not live views.
        return frozenset(iterable)

    def __repr__(self) -> str:
        return f"NodeView({self._graph!r})"


class EdgeView(Set):
    """Set-like live view of a graph's directed edges (``(tail, head)``)."""

    __slots__ = ("_graph",)

    def __init__(self, graph: DiGraph) -> None:
        self._graph = graph

    def __contains__(self, edge: object) -> bool:
        if not isinstance(edge, tuple) or len(edge) != 2:
            return False
        tail, head = edge
        try:
            return self._graph.has_edge(tail, head)
        except TypeError:
            return False

    def __iter__(self) -> Iterator[Edge]:
        return self._graph.edges()

    def __len__(self) -> int:
        return self._graph.edge_count

    def with_weights(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate ``(tail, head, weight)`` triples."""
        return self._graph.weighted_edges()

    @classmethod
    def _from_iterable(cls, iterable):
        return frozenset(iterable)

    def __repr__(self) -> str:
        return f"EdgeView({self._graph!r})"


class DegreeView(Mapping):
    """Mapping-like live view ``node -> degree``.

    Args:
        graph: the graph.
        direction: ``"out"``, ``"in"``, or ``"total"``.
    """

    __slots__ = ("_graph", "_direction")

    def __init__(self, graph: DiGraph, direction: str = "out") -> None:
        if direction not in ("out", "in", "total"):
            raise ValueError(f"direction must be out/in/total, got {direction!r}")
        self._graph = graph
        self._direction = direction

    def __getitem__(self, node: Node) -> int:
        if self._direction == "out":
            return self._graph.out_degree(node)
        if self._direction == "in":
            return self._graph.in_degree(node)
        return self._graph.degree(node)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._graph.nodes())

    def __len__(self) -> int:
        return self._graph.node_count

    def items(self):
        """Iterate ``(node, degree)`` pairs (live)."""
        for node in self._graph.nodes():
            yield node, self[node]

    def __repr__(self) -> str:
        return f"DegreeView({self._graph!r}, direction={self._direction!r})"
