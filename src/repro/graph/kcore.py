"""k-core decomposition.

Core numbers are a classic robustness/influence statistic (a node's core
number is the largest k such that it survives iteratively deleting all
nodes of degree < k). Available for dataset characterisation and as a
protector-ranking signal.

Implementation: min-degree peeling with a lazy heap on the *symmetrised*
degree (in + out neighbors, direction ignored), O(E log V).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Set, Tuple

from repro.graph.digraph import DiGraph, Node

__all__ = ["core_numbers", "k_core_subgraph"]


def core_numbers(graph: DiGraph) -> Dict[Node, int]:
    """Core number of every node (symmetrised-degree cores).

    Peeling invariant: repeatedly remove a minimum-degree node; a node's
    core number is the running maximum of the degrees at removal time.
    """
    neighbors: Dict[Node, Set[Node]] = {}
    for node in graph.nodes():
        adjacent = set(graph.successors(node)) | set(graph.predecessors(node))
        adjacent.discard(node)
        neighbors[node] = adjacent

    degree = {node: len(adjacent) for node, adjacent in neighbors.items()}
    heap: List[Tuple[int, int, Node]] = []
    order = {node: position for position, node in enumerate(graph.nodes())}
    for node, d in degree.items():
        heapq.heappush(heap, (d, order[node], node))

    core: Dict[Node, int] = {}
    removed: Set[Node] = set()
    running_max = 0
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in removed or d != degree[node]:
            continue  # stale entry
        running_max = max(running_max, d)
        core[node] = running_max
        removed.add(node)
        for neighbor in neighbors[node]:
            if neighbor not in removed:
                degree[neighbor] -= 1
                heapq.heappush(heap, (degree[neighbor], order[neighbor], neighbor))
    return core


def k_core_subgraph(graph: DiGraph, k: int) -> DiGraph:
    """Induced subgraph of nodes with core number >= ``k``."""
    cores = core_numbers(graph)
    from repro.graph.subgraph import induced_subgraph

    keep = [node for node, value in cores.items() if value >= k]
    return induced_subgraph(graph, keep, name=f"{graph.name}-core{k}")
