"""Induced subgraphs and community-boundary extraction.

The LCRB problem reasons about the rumor community's *boundary*: edges that
leave the community carry the rumor to potential bridge ends (Section IV).
These helpers extract both the induced subgraph of a node set and the
directed edges crossing out of it.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph, Edge, Node

__all__ = ["induced_subgraph", "boundary_out_edges", "boundary_in_edges", "edge_cut"]


def induced_subgraph(graph: DiGraph, nodes: Iterable[Node], name: str = "") -> DiGraph:
    """Subgraph induced by ``nodes`` (all must exist in ``graph``)."""
    keep: Set[Node] = set()
    for node in nodes:
        if node not in graph:
            raise NodeNotFoundError(node)
        keep.add(node)
    sub = DiGraph(name=name or f"{graph.name}[{len(keep)}]")
    sub.add_nodes(keep)
    for tail in keep:
        for head in graph.successors(tail):
            if head in keep:
                sub.add_edge(tail, head, graph.edge_weight(tail, head))
    return sub


def boundary_out_edges(graph: DiGraph, nodes: Iterable[Node]) -> List[Edge]:
    """Directed edges from inside ``nodes`` to outside (rumor escape routes)."""
    inside = set(nodes)
    for node in inside:
        if node not in graph:
            raise NodeNotFoundError(node)
    return [
        (tail, head)
        for tail in inside
        for head in graph.successors(tail)
        if head not in inside
    ]


def boundary_in_edges(graph: DiGraph, nodes: Iterable[Node]) -> List[Edge]:
    """Directed edges from outside ``nodes`` to inside."""
    inside = set(nodes)
    for node in inside:
        if node not in graph:
            raise NodeNotFoundError(node)
    return [
        (tail, head)
        for head in inside
        for tail in graph.predecessors(head)
        if tail not in inside
    ]


def edge_cut(graph: DiGraph, left: Iterable[Node], right: Iterable[Node]) -> Tuple[int, int]:
    """Count directed edges crossing between two disjoint node sets.

    Returns:
        ``(left_to_right, right_to_left)`` edge counts.
    """
    left_set, right_set = set(left), set(right)
    overlap = left_set & right_set
    if overlap:
        raise ValueError(f"node sets overlap: {sorted(map(repr, overlap))[:5]}")
    forward = sum(
        1 for tail in left_set for head in graph.successors(tail) if head in right_set
    )
    backward = sum(
        1 for tail in right_set for head in graph.successors(tail) if head in left_set
    )
    return forward, backward
