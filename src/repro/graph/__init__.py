"""Directed-graph substrate.

Everything in the paper runs on a directed graph G = (N, E) (Section III);
this package provides that substrate from scratch:

* :mod:`repro.graph.digraph` — the :class:`DiGraph` container (weighted
  directed multigraph-free graph with O(1) adjacency).
* :mod:`repro.graph.compact` — :class:`IndexedDiGraph`, an
  integer-indexed snapshot used by the hot simulation loops (frozen node
  set; edges mutable in place via :meth:`IndexedDiGraph.apply_updates`).
* :mod:`repro.graph.overlay` — the incremental CSR overlay behind
  ``apply_updates``: per-row rebuilding, version bumping, touched-id
  reporting for downstream sketch invalidation.
* :mod:`repro.graph.traversal` — BFS layers, multi-source BFS, hop
  distances, reachability (the paper's workhorse, Section V).
* :mod:`repro.graph.components` — weakly/strongly connected components.
* :mod:`repro.graph.generators` — random-graph models used to synthesise
  datasets (ER, BA, WS, planted partition, power-law communities).
* :mod:`repro.graph.metrics` — density, degree statistics, clustering.
* :mod:`repro.graph.io` — edge-list / adjacency / JSON persistence.
* :mod:`repro.graph.subgraph` — induced subgraphs and boundary extraction.
"""

from repro.graph.betweenness import edge_betweenness, node_betweenness
from repro.graph.compact import IndexedDiGraph
from repro.graph.digraph import DiGraph
from repro.graph.overlay import apply_updates
from repro.graph.paths import dijkstra, shortest_weighted_path
from repro.graph.subgraph import boundary_out_edges, induced_subgraph

__all__ = [
    "DiGraph",
    "IndexedDiGraph",
    "apply_updates",
    "induced_subgraph",
    "boundary_out_edges",
    "dijkstra",
    "shortest_weighted_path",
    "node_betweenness",
    "edge_betweenness",
]
