"""Edge and node betweenness centrality (Brandes' algorithm, unweighted).

Substrate for the Girvan-Newman community detector
(:mod:`repro.community.girvan_newman`) and available as another
centrality for ranking protector candidates. Directed variant of Brandes
(2001): one BFS + dependency accumulation per source, O(V·E) total.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from repro.graph.digraph import DiGraph, Edge, Node

__all__ = ["node_betweenness", "edge_betweenness"]


def _brandes(graph: DiGraph, accumulate_edges: bool):
    node_scores: Dict[Node, float] = {node: 0.0 for node in graph.nodes()}
    edge_scores: Dict[Edge, float] = (
        {edge: 0.0 for edge in graph.edges()} if accumulate_edges else {}
    )

    for source in graph.nodes():
        # BFS phase: shortest-path counts and predecessor lists.
        order: List[Node] = []
        predecessors: Dict[Node, List[Node]] = {node: [] for node in graph.nodes()}
        sigma: Dict[Node, float] = {node: 0.0 for node in graph.nodes()}
        distance: Dict[Node, int] = {}
        sigma[source] = 1.0
        distance[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            order.append(node)
            for neighbor in graph.successors(node):
                if neighbor not in distance:
                    distance[neighbor] = distance[node] + 1
                    queue.append(neighbor)
                if distance[neighbor] == distance[node] + 1:
                    sigma[neighbor] += sigma[node]
                    predecessors[neighbor].append(node)
        # Accumulation phase (reverse BFS order).
        delta: Dict[Node, float] = {node: 0.0 for node in graph.nodes()}
        for node in reversed(order):
            for pred in predecessors[node]:
                share = (sigma[pred] / sigma[node]) * (1.0 + delta[node])
                delta[pred] += share
                if accumulate_edges:
                    edge_scores[(pred, node)] += share
            if node != source:
                node_scores[node] += delta[node]
    return node_scores, edge_scores


def node_betweenness(graph: DiGraph, normalized: bool = True) -> Dict[Node, float]:
    """Directed node betweenness centrality.

    Args:
        graph: input digraph.
        normalized: divide by ``(n-1)(n-2)`` (directed pair count).
    """
    scores, _ = _brandes(graph, accumulate_edges=False)
    n = graph.node_count
    if normalized and n > 2:
        factor = 1.0 / ((n - 1) * (n - 2))
        scores = {node: value * factor for node, value in scores.items()}
    return scores


def edge_betweenness(graph: DiGraph, normalized: bool = True) -> Dict[Edge, float]:
    """Directed edge betweenness centrality.

    Args:
        graph: input digraph.
        normalized: divide by ``n (n-1)`` (directed pair count).
    """
    _, scores = _brandes(graph, accumulate_edges=True)
    n = graph.node_count
    if normalized and n > 1:
        factor = 1.0 / (n * (n - 1))
        scores = {edge: value * factor for edge, value in scores.items()}
    return scores
