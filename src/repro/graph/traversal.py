"""Breadth-first traversal primitives.

BFS is the workhorse of the whole paper: bridge ends are found with BFS
forward from rumor seeds (Rumor Forward Search Trees, Algorithm 1/3 line 3);
SCBG candidate protectors are found with BFS *backward* from bridge ends
(Bridge-end Backward Search Trees, Algorithm 3 line 4); and DOAM diffusion
itself is a two-source BFS with priority tie-breaking.

All functions here operate on :class:`repro.graph.digraph.DiGraph`; the
diffusion hot loops have their own int-indexed equivalents.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set

from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph, Node

__all__ = [
    "bfs_layers",
    "bfs_distances",
    "bfs_tree",
    "multi_source_distances",
    "reachable_set",
    "reverse_distances",
    "shortest_hop_distance",
    "descendants_within",
]


def _neighbor_fn(
    graph: DiGraph, reverse: bool
) -> Callable[[Node], Iterator[Node]]:
    return graph.predecessors if reverse else graph.successors


def bfs_layers(
    graph: DiGraph,
    sources: Iterable[Node],
    reverse: bool = False,
    max_depth: Optional[int] = None,
) -> Iterator[List[Node]]:
    """Yield BFS layers (hop fronts) from ``sources``.

    Layer 0 is the (deduplicated) source list in input order; layer ``k``
    holds nodes first reached in exactly ``k`` hops.

    Args:
        graph: the graph to traverse.
        sources: starting nodes (all must exist).
        reverse: traverse in-edges instead of out-edges (backward BFS).
        max_depth: stop after this many layers past the sources.
    """
    neighbors = _neighbor_fn(graph, reverse)
    seen: Set[Node] = set()
    layer: List[Node] = []
    for source in sources:
        if source not in graph:
            raise NodeNotFoundError(source)
        if source not in seen:
            seen.add(source)
            layer.append(source)
    depth = 0
    while layer:
        yield layer
        if max_depth is not None and depth >= max_depth:
            return
        next_layer: List[Node] = []
        for node in layer:
            for neighbor in neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    next_layer.append(neighbor)
        layer = next_layer
        depth += 1


def bfs_distances(
    graph: DiGraph,
    source: Node,
    reverse: bool = False,
    max_depth: Optional[int] = None,
) -> Dict[Node, int]:
    """Hop distances from a single source (unreachable nodes omitted)."""
    return multi_source_distances(graph, [source], reverse=reverse, max_depth=max_depth)


def multi_source_distances(
    graph: DiGraph,
    sources: Iterable[Node],
    reverse: bool = False,
    max_depth: Optional[int] = None,
) -> Dict[Node, int]:
    """Hop distance from the nearest of ``sources`` to every reachable node.

    This is exactly the rumor arrival time ``t_R(v)`` under DOAM when
    ``sources`` is the rumor seed set.
    """
    distances: Dict[Node, int] = {}
    for depth, layer in enumerate(
        bfs_layers(graph, sources, reverse=reverse, max_depth=max_depth)
    ):
        for node in layer:
            distances[node] = depth
    return distances


def bfs_tree(
    graph: DiGraph,
    source: Node,
    reverse: bool = False,
    max_depth: Optional[int] = None,
) -> Dict[Node, Optional[Node]]:
    """BFS parent pointers from ``source`` (``source`` maps to ``None``).

    The returned mapping *is* the paper's search tree (RFST when forward
    from a rumor seed, BBST when backward from a bridge end): keys are the
    tree's vertex set, parent pointers are the tree edges.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    neighbors = _neighbor_fn(graph, reverse)
    parents: Dict[Node, Optional[Node]] = {source: None}
    queue = deque([(source, 0)])
    while queue:
        node, depth = queue.popleft()
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in neighbors(node):
            if neighbor not in parents:
                parents[neighbor] = node
                queue.append((neighbor, depth + 1))
    return parents


def reachable_set(
    graph: DiGraph,
    sources: Iterable[Node],
    reverse: bool = False,
    max_depth: Optional[int] = None,
) -> Set[Node]:
    """All nodes reachable from ``sources`` (sources included)."""
    return set(
        multi_source_distances(graph, sources, reverse=reverse, max_depth=max_depth)
    )


def reverse_distances(
    graph: DiGraph, target: Node, max_depth: Optional[int] = None
) -> Dict[Node, int]:
    """Hop distance from every node *to* ``target`` (backward BFS).

    ``reverse_distances(g, v)[u]`` is the length of the shortest directed
    path ``u -> ... -> v`` — the protector travel time from a candidate seed
    ``u`` to bridge end ``v`` under DOAM.
    """
    return bfs_distances(graph, target, reverse=True, max_depth=max_depth)


def shortest_hop_distance(graph: DiGraph, source: Node, target: Node) -> Optional[int]:
    """Length of the shortest directed path, or ``None`` if unreachable."""
    if target not in graph:
        raise NodeNotFoundError(target)
    for depth, layer in enumerate(bfs_layers(graph, [source])):
        if target in layer:
            return depth
    return None


def descendants_within(
    graph: DiGraph, source: Node, hops: int
) -> Set[Node]:
    """Nodes reachable from ``source`` in at most ``hops`` hops (source excluded)."""
    result = reachable_set(graph, [source], max_depth=hops)
    result.discard(source)
    return result
