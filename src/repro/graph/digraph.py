"""The core directed-graph container.

:class:`DiGraph` stores a simple weighted directed graph (no parallel
edges; self-loops allowed but unused by the paper's models) with symmetric
O(1) access to successors and predecessors. Nodes are arbitrary hashable
objects; the dataset loaders use ints and strings.

Design notes
------------
* Adjacency is ``dict[node, dict[node, float]]`` in both directions, i.e.
  every edge is stored twice (forward and reverse) so rumor-forward BFS and
  bridge-end-*backward* BFS (Section V of the paper) are equally cheap.
* Mutation keeps both directions consistent; invariants are cheap enough
  that the test suite re-validates them property-based.
* Hot loops (Monte-Carlo diffusion) do not run on this class — they run on
  :class:`repro.graph.compact.IndexedDiGraph`, an immutable int-indexed
  snapshot produced by :meth:`DiGraph.to_indexed`.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Tuple,
)

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError

__all__ = ["DiGraph", "Node", "Edge"]

Node = Hashable
Edge = Tuple[Node, Node]


class DiGraph:
    """A simple weighted directed graph.

    Example:
        >>> g = DiGraph()
        >>> g.add_edge("a", "b")
        >>> g.add_edge("b", "c", weight=2.0)
        >>> sorted(g.successors("b"))
        ['c']
        >>> g.in_degree("b")
        1
    """

    __slots__ = ("_succ", "_pred", "_edge_count", "name")

    def __init__(self, name: str = "") -> None:
        self._succ: Dict[Node, Dict[Node, float]] = {}
        self._pred: Dict[Node, Dict[Node, float]] = {}
        self._edge_count = 0
        self.name = name

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        nodes: Iterable[Node] = (),
        name: str = "",
    ) -> "DiGraph":
        """Build a graph from an edge iterable (plus optional isolated nodes)."""
        graph = cls(name=name)
        for node in nodes:
            graph.add_node(node)
        for tail, head in edges:
            graph.add_edge(tail, head)
        return graph

    @classmethod
    def from_adjacency(
        cls, adjacency: Mapping[Node, Iterable[Node]], name: str = ""
    ) -> "DiGraph":
        """Build a graph from a ``{tail: [heads...]}`` mapping."""
        graph = cls(name=name)
        for tail, heads in adjacency.items():
            graph.add_node(tail)
            for head in heads:
                graph.add_edge(tail, head)
        return graph

    def copy(self, name: Optional[str] = None) -> "DiGraph":
        """Return an independent deep copy of the structure."""
        clone = DiGraph(name=self.name if name is None else name)
        clone._succ = {node: dict(nbrs) for node, nbrs in self._succ.items()}
        clone._pred = {node: dict(nbrs) for node, nbrs in self._pred.items()}
        clone._edge_count = self._edge_count
        return clone

    def reverse(self, name: Optional[str] = None) -> "DiGraph":
        """Return a copy with every edge direction flipped."""
        flipped = DiGraph(name=self.name if name is None else name)
        flipped._succ = {node: dict(nbrs) for node, nbrs in self._pred.items()}
        flipped._pred = {node: dict(nbrs) for node, nbrs in self._succ.items()}
        flipped._edge_count = self._edge_count
        return flipped

    # -- mutation -------------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add ``node`` (no-op if present)."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Add many nodes."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, tail: Node, head: Node, weight: float = 1.0) -> None:
        """Add the directed edge ``tail -> head`` (endpoints auto-created).

        Re-adding an existing edge overwrites its weight; the edge count is
        unchanged.
        """
        if weight <= 0:
            raise GraphError(f"edge weight must be > 0, got {weight!r}")
        self.add_node(tail)
        self.add_node(head)
        if head not in self._succ[tail]:
            self._edge_count += 1
        self._succ[tail][head] = weight
        self._pred[head][tail] = weight

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Add many unit-weight edges."""
        for tail, head in edges:
            self.add_edge(tail, head)

    def add_symmetric_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add both ``u -> v`` and ``v -> u`` (undirected-edge convention).

        The paper symmetrises the Hep collaboration network this way
        (Section VI.A.2).
        """
        self.add_edge(u, v, weight)
        self.add_edge(v, u, weight)

    def remove_edge(self, tail: Node, head: Node) -> None:
        """Remove the directed edge ``tail -> head``."""
        try:
            del self._succ[tail][head]
        except KeyError:
            raise EdgeNotFoundError(tail, head) from None
        del self._pred[head][tail]
        self._edge_count -= 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        for head in list(self._succ[node]):
            self.remove_edge(node, head)
        for tail in list(self._pred[node]):
            self.remove_edge(tail, node)
        del self._succ[node]
        del self._pred[node]

    # -- inspection -------------------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._succ)

    @property
    def edge_count(self) -> int:
        """Number of directed edges."""
        return self._edge_count

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._succ)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all directed edges as ``(tail, head)`` pairs."""
        for tail, nbrs in self._succ.items():
            for head in nbrs:
                yield (tail, head)

    def weighted_edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate over ``(tail, head, weight)`` triples."""
        for tail, nbrs in self._succ.items():
            for head, weight in nbrs.items():
                yield (tail, head, weight)

    def has_node(self, node: Node) -> bool:
        """True if ``node`` is present."""
        return node in self._succ

    def has_edge(self, tail: Node, head: Node) -> bool:
        """True if ``tail -> head`` is present."""
        return tail in self._succ and head in self._succ[tail]

    def _require_node(self, node: Node) -> None:
        if node not in self._succ:
            raise NodeNotFoundError(node)

    def successors(self, node: Node) -> Iterator[Node]:
        """Iterate over out-neighbors of ``node``."""
        self._require_node(node)
        return iter(self._succ[node])

    def predecessors(self, node: Node) -> Iterator[Node]:
        """Iterate over in-neighbors of ``node``."""
        self._require_node(node)
        return iter(self._pred[node])

    def out_degree(self, node: Node) -> int:
        """Number of out-edges of ``node`` (the paper's ``d_out``)."""
        self._require_node(node)
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        """Number of in-edges of ``node``."""
        self._require_node(node)
        return len(self._pred[node])

    def degree(self, node: Node) -> int:
        """Total degree (in + out)."""
        return self.in_degree(node) + self.out_degree(node)

    def edge_weight(self, tail: Node, head: Node) -> float:
        """Weight of ``tail -> head``; raises if absent."""
        self._require_node(tail)
        try:
            return self._succ[tail][head]
        except KeyError:
            raise EdgeNotFoundError(tail, head) from None

    def out_weight(self, node: Node) -> float:
        """Sum of weights on out-edges of ``node``."""
        self._require_node(node)
        return sum(self._succ[node].values())

    def in_weight(self, node: Node) -> float:
        """Sum of weights on in-edges of ``node``."""
        self._require_node(node)
        return sum(self._pred[node].values())

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.weighted_edges())

    # -- conversion -------------------------------------------------------------

    def to_indexed(self) -> "IndexedDiGraph":
        """Snapshot this graph into an immutable int-indexed form.

        The returned :class:`~repro.graph.compact.IndexedDiGraph` is what
        the diffusion hot loops run on; it keeps a stable node ordering
        (insertion order) so translation between the two is deterministic.
        """
        from repro.graph.compact import IndexedDiGraph

        return IndexedDiGraph.from_digraph(self)

    def nodes_view(self) -> "NodeView":
        """Live set-like view of the nodes (see :mod:`repro.graph.views`)."""
        from repro.graph.views import NodeView

        return NodeView(self)

    def edges_view(self) -> "EdgeView":
        """Live set-like view of the directed edges."""
        from repro.graph.views import EdgeView

        return EdgeView(self)

    def degree_view(self, direction: str = "out") -> "DegreeView":
        """Live mapping view ``node -> degree``."""
        from repro.graph.views import DegreeView

        return DegreeView(self, direction)

    def to_undirected_weights(self) -> Dict[Node, Dict[Node, float]]:
        """Symmetrised weighted adjacency (for modularity / Louvain).

        An edge present in both directions contributes the sum of the two
        weights; a one-directional edge contributes its weight. Self-loops
        keep their weight once.
        """
        sym: Dict[Node, Dict[Node, float]] = {node: {} for node in self._succ}
        for tail, head, weight in self.weighted_edges():
            if tail == head:
                sym[tail][tail] = sym[tail].get(tail, 0.0) + weight
                continue
            sym[tail][head] = sym[tail].get(head, 0.0) + weight
            sym[head][tail] = sym[head].get(tail, 0.0) + weight
        return sym

    # -- integrity ---------------------------------------------------------------

    def validate(self) -> None:
        """Check internal invariants; raises :class:`GraphError` on breakage.

        Used by the property-based test suite after random mutation
        sequences.
        """
        if set(self._succ) != set(self._pred):
            raise GraphError("successor and predecessor node sets differ")
        forward = {
            (tail, head): weight for tail, head, weight in self.weighted_edges()
        }
        backward = {
            (tail, head): weight
            for head, nbrs in self._pred.items()
            for tail, weight in nbrs.items()
        }
        if forward != backward:
            raise GraphError("forward and reverse adjacency disagree")
        if len(forward) != self._edge_count:
            raise GraphError(
                f"edge count {self._edge_count} != stored edges {len(forward)}"
            )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"DiGraph({label} nodes={self.node_count}, edges={self.edge_count})"
