"""Descriptive graph statistics.

The paper characterises each dataset by node count, edge count, and average
node degree (Section VI.A); the dataset replicas are calibrated against the
same statistics, and the experiment reports print them so a reader can
compare replica vs. paper at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.graph.digraph import DiGraph

__all__ = [
    "average_degree",
    "density",
    "degree_histogram",
    "reciprocity",
    "local_clustering",
    "average_clustering",
    "GraphSummary",
    "summarize",
]


def average_degree(graph: DiGraph) -> float:
    """Directed edges per node — the paper's "average node degree".

    (Enron: 367662 / 36692 ≈ 10.0; Hep after symmetrisation:
    2 * 58891 / 15233 ≈ 7.73.)
    """
    if graph.node_count == 0:
        return 0.0
    return graph.edge_count / graph.node_count


def density(graph: DiGraph) -> float:
    """Directed density: edges / (n * (n - 1))."""
    n = graph.node_count
    if n < 2:
        return 0.0
    return graph.edge_count / (n * (n - 1))


def degree_histogram(graph: DiGraph, direction: str = "out") -> List[int]:
    """Histogram of degrees: index d holds the number of nodes with degree d.

    Args:
        direction: ``"out"``, ``"in"``, or ``"total"``.
    """
    if direction == "out":
        degrees = [graph.out_degree(node) for node in graph.nodes()]
    elif direction == "in":
        degrees = [graph.in_degree(node) for node in graph.nodes()]
    elif direction == "total":
        degrees = [graph.degree(node) for node in graph.nodes()]
    else:
        raise ValueError(f"direction must be out/in/total, got {direction!r}")
    if not degrees:
        return []
    histogram = [0] * (max(degrees) + 1)
    for degree in degrees:
        histogram[degree] += 1
    return histogram


def reciprocity(graph: DiGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists."""
    if graph.edge_count == 0:
        return 0.0
    mutual = sum(1 for tail, head in graph.edges() if graph.has_edge(head, tail))
    return mutual / graph.edge_count


def local_clustering(graph: DiGraph, node) -> float:
    """Undirected local clustering coefficient of ``node``.

    Neighborhoods are symmetrised (a neighbor is any node connected in
    either direction); the coefficient is the fraction of neighbor pairs
    connected by at least one directed edge.
    """
    neighbors = set(graph.successors(node)) | set(graph.predecessors(node))
    neighbors.discard(node)
    k = len(neighbors)
    if k < 2:
        return 0.0
    neighbor_list = list(neighbors)
    links = 0
    for i, u in enumerate(neighbor_list):
        for v in neighbor_list[i + 1 :]:
            if graph.has_edge(u, v) or graph.has_edge(v, u):
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: DiGraph) -> float:
    """Mean local clustering coefficient over all nodes."""
    if graph.node_count == 0:
        return 0.0
    return sum(local_clustering(graph, node) for node in graph.nodes()) / graph.node_count


@dataclass(frozen=True)
class GraphSummary:
    """Headline statistics of a graph, as printed by reports and the CLI."""

    name: str
    nodes: int
    edges: int
    average_degree: float
    density: float
    reciprocity: float

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON reports."""
        return {
            "name": self.name,
            "nodes": self.nodes,
            "edges": self.edges,
            "average_degree": self.average_degree,
            "density": self.density,
            "reciprocity": self.reciprocity,
        }

    def __str__(self) -> str:
        return (
            f"{self.name or 'graph'}: |N|={self.nodes} |E|={self.edges} "
            f"avg_deg={self.average_degree:.2f} density={self.density:.5f} "
            f"reciprocity={self.reciprocity:.2f}"
        )


def summarize(graph: DiGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    return GraphSummary(
        name=graph.name,
        nodes=graph.node_count,
        edges=graph.edge_count,
        average_degree=average_degree(graph),
        density=density(graph),
        reciprocity=reciprocity(graph),
    )
