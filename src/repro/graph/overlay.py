"""In-place edge updates for :class:`IndexedDiGraph` — the CSR overlay.

The serving layer (:mod:`repro.serve`) holds one long-lived
:class:`~repro.graph.compact.IndexedDiGraph` and applies edge insertions
and deletions *between* queries instead of rebuilding the snapshot from a
:class:`~repro.graph.digraph.DiGraph`. This module implements that
mutation as a **row overlay**: only the adjacency rows of mutated
endpoints are rebuilt (insertions append at the end of a row, mirroring
:meth:`DiGraph.add_edge` ordering; re-inserting an existing edge
overwrites its weight in place), the memoized CSR export is dropped, and
the graph's ``version`` counter is bumped so downstream caches — the
executor's pinned graph publication, worker-side graph materialisation,
inline task state — know the snapshot changed even though the object
identity did not.

Rules, enforced before any row is touched (a rejected batch leaves the
graph exactly as it was):

* the node set is fixed — updates may only reference existing node ids;
* self-loops and non-positive weights are rejected (matching
  :meth:`DiGraph.add_edge` and :meth:`IndexedDiGraph.from_csr`);
* every deletion must name an existing edge
  (:class:`~repro.errors.EdgeNotFoundError` otherwise);
* an edge may appear at most once per batch, and never in both the
  insertion and the deletion list (the combination is ambiguous).

:func:`apply_updates` returns the set of **touched endpoint ids** — both
ends of every mutated edge, weight overwrites included. That set is what
:meth:`repro.sketch.store.SketchStore.refresh` consumes to invalidate
exactly the RR-set worlds whose sampling read a mutated row.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError

__all__ = ["apply_updates", "normalize_insertions", "normalize_deletions"]

#: A normalized edge insertion: ``(tail_id, head_id, weight)``.
EdgeInsertion = Tuple[int, int, float]

#: A normalized edge deletion: ``(tail_id, head_id)``.
EdgeDeletion = Tuple[int, int]


def _check_id(graph, node: object, what: str) -> int:
    if isinstance(node, bool) or not isinstance(node, int):
        raise NodeNotFoundError(node)
    if not 0 <= node < graph.node_count:
        raise NodeNotFoundError(node)
    return node


def _check_pair(graph, tail: object, head: object, what: str) -> Tuple[int, int]:
    tail = _check_id(graph, tail, what)
    head = _check_id(graph, head, what)
    if tail == head:
        raise GraphError(f"self-loop on node id {tail} rejected in {what}")
    return tail, head


def normalize_insertions(graph, insertions: Iterable[Sequence]) -> List[EdgeInsertion]:
    """Validate an insertion batch into ``(tail, head, weight)`` triples.

    Accepts ``(tail, head)`` pairs (weight 1.0, the
    :meth:`DiGraph.add_edge` default) or ``(tail, head, weight)``
    triples. Duplicate edges within the batch are rejected.
    """
    out: List[EdgeInsertion] = []
    seen: Set[Tuple[int, int]] = set()
    for entry in insertions:
        entry = tuple(entry)
        if len(entry) == 2:
            tail, head = entry
            weight = 1.0
        elif len(entry) == 3:
            tail, head, weight = entry
        else:
            raise GraphError(
                f"insertion must be (tail, head[, weight]), got {entry!r}"
            )
        tail, head = _check_pair(graph, tail, head, "insertion")
        weight = float(weight)
        if weight <= 0:
            raise GraphError(f"edge weight must be > 0, got {weight!r}")
        if (tail, head) in seen:
            raise GraphError(f"duplicate insertion {tail} -> {head} in batch")
        seen.add((tail, head))
        out.append((tail, head, weight))
    return out


def normalize_deletions(graph, deletions: Iterable[Sequence]) -> List[EdgeDeletion]:
    """Validate a deletion batch into ``(tail, head)`` pairs."""
    out: List[EdgeDeletion] = []
    seen: Set[Tuple[int, int]] = set()
    for entry in deletions:
        entry = tuple(entry)
        if len(entry) != 2:
            raise GraphError(f"deletion must be (tail, head), got {entry!r}")
        tail, head = _check_pair(graph, *entry, "deletion")
        if (tail, head) in seen:
            raise GraphError(f"duplicate deletion {tail} -> {head} in batch")
        seen.add((tail, head))
        out.append((tail, head))
    return out


def apply_updates(
    graph,
    insertions: Iterable[Sequence] = (),
    deletions: Iterable[Sequence] = (),
) -> FrozenSet[int]:
    """Mutate ``graph`` in place; returns the touched endpoint ids.

    The whole batch is validated first, then applied atomically:
    deletions, then insertions (the two lists are disjoint by
    construction, so the order is immaterial). Rebuilt rows stay tuples
    — only the rows of touched endpoints are re-created, everything else
    is shared with the pre-update graph.
    """
    inserted = normalize_insertions(graph, insertions)
    deleted = normalize_deletions(graph, deletions)
    overlap = {(t, h) for t, h, _ in inserted} & set(deleted)
    if overlap:
        tail, head = sorted(overlap)[0]
        raise GraphError(
            f"edge {tail} -> {head} appears in both insertions and "
            f"deletions; split the batch"
        )
    # Materialise the lazy adjacency (CSR-born graphs) before mutating.
    out, inn, out_weights = graph.out, graph.inn, graph.out_weights
    for tail, head in deleted:
        if head not in out[tail]:
            raise EdgeNotFoundError(tail, head)

    out_rows: dict = {}
    weight_rows: dict = {}
    in_rows: dict = {}

    def _mutable(rows: dict, source, index: int) -> list:
        row = rows.get(index)
        if row is None:
            row = list(source[index])
            rows[index] = row
        return row

    touched: Set[int] = set()
    edge_delta = 0
    for tail, head in deleted:
        row = _mutable(out_rows, out, tail)
        position = row.index(head)
        row.pop(position)
        _mutable(weight_rows, out_weights, tail).pop(position)
        _mutable(in_rows, inn, head).remove(tail)
        edge_delta -= 1
        touched.update((tail, head))
    for tail, head, weight in inserted:
        row = _mutable(out_rows, out, tail)
        weights = _mutable(weight_rows, out_weights, tail)
        if head in row:
            weights[row.index(head)] = weight  # overwrite, position kept
        else:
            row.append(head)
            weights.append(weight)
            _mutable(in_rows, inn, head).append(tail)
            edge_delta += 1
        touched.update((tail, head))

    if not touched:
        return frozenset()
    new_out = list(out)
    new_weights = list(out_weights)
    new_inn = list(inn)
    for index, row in out_rows.items():
        new_out[index] = tuple(row)
    for index, row in weight_rows.items():
        new_weights[index] = tuple(row)
    for index, row in in_rows.items():
        new_inn[index] = tuple(row)
    graph._out = tuple(new_out)
    graph._out_weights = tuple(new_weights)
    graph._inn = tuple(new_inn)
    graph.edge_count += edge_delta
    graph._csr = None  # the memoized CSR export is stale now
    graph.version += 1
    return frozenset(touched)
