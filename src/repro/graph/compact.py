"""Immutable integer-indexed graph snapshot for hot loops.

Monte-Carlo diffusion simulates tens of thousands of BFS-like sweeps; doing
that over ``dict``-keyed adjacency is needlessly slow. An
:class:`IndexedDiGraph` freezes a :class:`repro.graph.digraph.DiGraph` into:

* a stable node list (``labels``) and reverse index (``index_of``),
* out- and in-adjacency as ``list[list[int]]`` (tuple-of-tuples, actually,
  to guarantee immutability),

so the simulators run on small-int arrays and convert back to labels only
at the API boundary.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import GraphError, NodeNotFoundError

__all__ = ["CSRArrays", "IndexedDiGraph"]


class CSRArrays:
    """Compressed-sparse-row snapshot of the out-adjacency.

    The flat-array form the batched diffusion kernels
    (:mod:`repro.kernels`) consume: ``indices[indptr[u]:indptr[u + 1]]``
    are the out-neighbor ids of node ``u`` and ``weights`` is parallel to
    ``indices``. All three are plain tuples of Python numbers so the core
    stays zero-dependency; the NumPy backend converts them with
    ``np.asarray`` on first use.

    Attributes:
        indptr: row-pointer tuple of length ``node_count + 1``.
        indices: flat out-neighbor ids, ``edge_count`` long.
        weights: flat edge weights, parallel to ``indices``.
    """

    __slots__ = ("indptr", "indices", "weights")

    def __init__(
        self,
        indptr: Sequence[int],
        indices: Sequence[int],
        weights: Sequence[float],
    ) -> None:
        self.indptr: Tuple[int, ...] = tuple(int(p) for p in indptr)
        self.indices: Tuple[int, ...] = tuple(int(i) for i in indices)
        self.weights: Tuple[float, ...] = tuple(float(w) for w in weights)
        if len(self.weights) != len(self.indices):
            raise GraphError(
                f"weights ({len(self.weights)}) must parallel indices "
                f"({len(self.indices)})"
            )

    @property
    def node_count(self) -> int:
        """Number of rows."""
        return len(self.indptr) - 1

    @property
    def edge_count(self) -> int:
        """Number of stored edges."""
        return len(self.indices)

    def row(self, node_id: int) -> Tuple[int, ...]:
        """Out-neighbor ids of one node."""
        return self.indices[self.indptr[node_id]: self.indptr[node_id + 1]]

    def out_degrees(self) -> List[int]:
        """Out-degree of every node, in id order."""
        return [
            self.indptr[u + 1] - self.indptr[u] for u in range(self.node_count)
        ]

    def in_degrees(self) -> List[int]:
        """In-degree of every node, in id order (bincount of ``indices``)."""
        counts = [0] * self.node_count
        for head in self.indices:
            counts[head] += 1
        return counts

    def __repr__(self) -> str:
        return f"CSRArrays(nodes={self.node_count}, edges={self.edge_count})"


class IndexedDiGraph:
    """Frozen integer view of a directed graph.

    Attributes:
        labels: tuple mapping node id -> original node label.
        out: tuple of tuples; ``out[u]`` lists out-neighbor ids of ``u``.
        inn: tuple of tuples; ``inn[u]`` lists in-neighbor ids of ``u``.
    """

    __slots__ = (
        "labels",
        "out",
        "inn",
        "out_weights",
        "_index_of",
        "edge_count",
        "_csr",
    )

    def __init__(
        self,
        labels: Sequence[object],
        out: Sequence[Sequence[int]],
        inn: Sequence[Sequence[int]],
        out_weights: Sequence[Sequence[float]] = None,
    ) -> None:
        if not (len(labels) == len(out) == len(inn)):
            raise ValueError("labels/out/inn must have equal length")
        self.labels: Tuple[object, ...] = tuple(labels)
        self.out: Tuple[Tuple[int, ...], ...] = tuple(tuple(n) for n in out)
        self.inn: Tuple[Tuple[int, ...], ...] = tuple(tuple(n) for n in inn)
        if out_weights is None:
            self.out_weights: Tuple[Tuple[float, ...], ...] = tuple(
                (1.0,) * len(neighbors) for neighbors in self.out
            )
        else:
            self.out_weights = tuple(tuple(w) for w in out_weights)
            if len(self.out_weights) != len(self.out) or any(
                len(weights) != len(neighbors)
                for weights, neighbors in zip(self.out_weights, self.out)
            ):
                raise ValueError("out_weights must parallel out adjacency")
        self._index_of: Dict[object, int] = {
            label: index for index, label in enumerate(self.labels)
        }
        if len(self._index_of) != len(self.labels):
            raise ValueError("node labels must be unique")
        self.edge_count = sum(len(neighbors) for neighbors in self.out)
        self._csr: Optional[CSRArrays] = None

    @classmethod
    def from_digraph(cls, graph) -> "IndexedDiGraph":
        """Snapshot a :class:`~repro.graph.digraph.DiGraph`.

        Node ids follow the graph's insertion order, so repeated snapshots
        of the same graph are identical — important for seeded
        reproducibility of the simulators. Edge weights are carried along
        (parallel to ``out``) for the weighted diffusion variants.
        """
        labels = list(graph.nodes())
        position = {label: index for index, label in enumerate(labels)}
        out: List[List[int]] = [[] for _ in labels]
        inn: List[List[int]] = [[] for _ in labels]
        weights: List[List[float]] = [[] for _ in labels]
        for tail, head, weight in graph.weighted_edges():
            out[position[tail]].append(position[head])
            weights[position[tail]].append(weight)
            inn[position[head]].append(position[tail])
        return cls(labels, out, inn, out_weights=weights)

    @classmethod
    def from_csr(
        cls,
        labels: Sequence[object],
        indptr: Sequence[int],
        indices: Sequence[int],
        weights: Optional[Sequence[float]] = None,
    ) -> "IndexedDiGraph":
        """Build a graph from validated CSR arrays (the kernel ingest path).

        The inverse of :meth:`csr`: ``IndexedDiGraph.from_csr(g.labels,
        *astuple(g.csr()))`` reproduces ``g`` exactly. Validation is
        strict because raw arrays carry none of :class:`DiGraph`'s
        invariants:

        * ``indptr`` must start at 0, be non-decreasing, have one entry
          per node plus one, and end at ``len(indices)``;
        * every index must be a valid node id;
        * self-loops and duplicate edges within a row are rejected (the
          diffusion kernels treat a self-loop as an always-wasted trial,
          so one in raw input almost certainly means corrupted data);
        * ``weights``, when given, must parallel ``indices`` and be
          strictly positive (matching :meth:`DiGraph.add_edge`).
        """
        n = len(labels)
        if len(indptr) != n + 1:
            raise GraphError(
                f"indptr must have {n + 1} entries for {n} labels, "
                f"got {len(indptr)}"
            )
        if n and indptr[0] != 0:
            raise GraphError(f"indptr must start at 0, got {indptr[0]!r}")
        if not n and len(indices):
            raise GraphError("indices non-empty but there are no nodes")
        if n and indptr[-1] != len(indices):
            raise GraphError(
                f"indptr must end at len(indices)={len(indices)}, "
                f"got {indptr[-1]!r}"
            )
        if weights is not None and len(weights) != len(indices):
            raise GraphError(
                f"weights ({len(weights)}) must parallel indices "
                f"({len(indices)})"
            )
        out: List[List[int]] = []
        inn: List[List[int]] = [[] for _ in range(n)]
        row_weights: List[List[float]] = []
        for u in range(n):
            lo, hi = indptr[u], indptr[u + 1]
            if hi < lo:
                raise GraphError(f"indptr decreases at row {u}: {lo} -> {hi}")
            row: List[int] = []
            seen = set()
            wrow: List[float] = []
            for position in range(lo, hi):
                head = int(indices[position])
                if not 0 <= head < n:
                    raise GraphError(
                        f"edge index {head} out of range [0, {n}) in row {u}"
                    )
                if head == u:
                    raise GraphError(f"self-loop on node id {u} rejected")
                if head in seen:
                    raise GraphError(f"duplicate edge {u} -> {head} rejected")
                seen.add(head)
                row.append(head)
                weight = 1.0 if weights is None else float(weights[position])
                if weight <= 0:
                    raise GraphError(
                        f"edge weight must be > 0, got {weight!r} on "
                        f"{u} -> {head}"
                    )
                wrow.append(weight)
                inn[head].append(u)
            out.append(row)
            row_weights.append(wrow)
        return cls(labels, out, inn, out_weights=row_weights)

    def csr(self) -> CSRArrays:
        """The cached CSR snapshot of the out-adjacency (see :class:`CSRArrays`)."""
        if self._csr is None:
            indptr = [0]
            indices: List[int] = []
            weights: List[float] = []
            for neighbors, row_weights in zip(self.out, self.out_weights):
                indices.extend(neighbors)
                weights.extend(row_weights)
                indptr.append(len(indices))
            self._csr = CSRArrays(indptr, indices, weights)
        return self._csr

    # -- basic accessors -------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self.labels)

    def __len__(self) -> int:
        return len(self.labels)

    def index(self, label: object) -> int:
        """Node id for ``label``; raises :class:`NodeNotFoundError` if absent."""
        try:
            return self._index_of[label]
        except KeyError:
            raise NodeNotFoundError(label) from None

    def indices(self, labels: Iterable[object]) -> List[int]:
        """Node ids for many labels."""
        return [self.index(label) for label in labels]

    def label_set(self, ids: Iterable[int]) -> set:
        """Original labels for a collection of node ids."""
        return {self.labels[node_id] for node_id in ids}

    def out_degree(self, node_id: int) -> int:
        """Out-degree of ``node_id`` (the paper's ``d_out``)."""
        return len(self.out[node_id])

    def in_degree(self, node_id: int) -> int:
        """In-degree of ``node_id``."""
        return len(self.inn[node_id])

    def __repr__(self) -> str:
        return f"IndexedDiGraph(nodes={self.node_count}, edges={self.edge_count})"
