"""Immutable integer-indexed graph snapshot for hot loops.

Monte-Carlo diffusion simulates tens of thousands of BFS-like sweeps; doing
that over ``dict``-keyed adjacency is needlessly slow. An
:class:`IndexedDiGraph` freezes a :class:`repro.graph.digraph.DiGraph` into:

* a stable node list (``labels``) and reverse index (``index_of``),
* out- and in-adjacency as ``list[list[int]]`` (tuple-of-tuples, actually,
  to guarantee immutability),

so the simulators run on small-int arrays and convert back to labels only
at the API boundary.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import NodeNotFoundError

__all__ = ["IndexedDiGraph"]


class IndexedDiGraph:
    """Frozen integer view of a directed graph.

    Attributes:
        labels: tuple mapping node id -> original node label.
        out: tuple of tuples; ``out[u]`` lists out-neighbor ids of ``u``.
        inn: tuple of tuples; ``inn[u]`` lists in-neighbor ids of ``u``.
    """

    __slots__ = ("labels", "out", "inn", "out_weights", "_index_of", "edge_count")

    def __init__(
        self,
        labels: Sequence[object],
        out: Sequence[Sequence[int]],
        inn: Sequence[Sequence[int]],
        out_weights: Sequence[Sequence[float]] = None,
    ) -> None:
        if not (len(labels) == len(out) == len(inn)):
            raise ValueError("labels/out/inn must have equal length")
        self.labels: Tuple[object, ...] = tuple(labels)
        self.out: Tuple[Tuple[int, ...], ...] = tuple(tuple(n) for n in out)
        self.inn: Tuple[Tuple[int, ...], ...] = tuple(tuple(n) for n in inn)
        if out_weights is None:
            self.out_weights: Tuple[Tuple[float, ...], ...] = tuple(
                (1.0,) * len(neighbors) for neighbors in self.out
            )
        else:
            self.out_weights = tuple(tuple(w) for w in out_weights)
            if len(self.out_weights) != len(self.out) or any(
                len(weights) != len(neighbors)
                for weights, neighbors in zip(self.out_weights, self.out)
            ):
                raise ValueError("out_weights must parallel out adjacency")
        self._index_of: Dict[object, int] = {
            label: index for index, label in enumerate(self.labels)
        }
        if len(self._index_of) != len(self.labels):
            raise ValueError("node labels must be unique")
        self.edge_count = sum(len(neighbors) for neighbors in self.out)

    @classmethod
    def from_digraph(cls, graph) -> "IndexedDiGraph":
        """Snapshot a :class:`~repro.graph.digraph.DiGraph`.

        Node ids follow the graph's insertion order, so repeated snapshots
        of the same graph are identical — important for seeded
        reproducibility of the simulators. Edge weights are carried along
        (parallel to ``out``) for the weighted diffusion variants.
        """
        labels = list(graph.nodes())
        position = {label: index for index, label in enumerate(labels)}
        out: List[List[int]] = [[] for _ in labels]
        inn: List[List[int]] = [[] for _ in labels]
        weights: List[List[float]] = [[] for _ in labels]
        for tail, head, weight in graph.weighted_edges():
            out[position[tail]].append(position[head])
            weights[position[tail]].append(weight)
            inn[position[head]].append(position[tail])
        return cls(labels, out, inn, out_weights=weights)

    # -- basic accessors -------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self.labels)

    def __len__(self) -> int:
        return len(self.labels)

    def index(self, label: object) -> int:
        """Node id for ``label``; raises :class:`NodeNotFoundError` if absent."""
        try:
            return self._index_of[label]
        except KeyError:
            raise NodeNotFoundError(label) from None

    def indices(self, labels: Iterable[object]) -> List[int]:
        """Node ids for many labels."""
        return [self.index(label) for label in labels]

    def label_set(self, ids: Iterable[int]) -> set:
        """Original labels for a collection of node ids."""
        return {self.labels[node_id] for node_id in ids}

    def out_degree(self, node_id: int) -> int:
        """Out-degree of ``node_id`` (the paper's ``d_out``)."""
        return len(self.out[node_id])

    def in_degree(self, node_id: int) -> int:
        """In-degree of ``node_id``."""
        return len(self.inn[node_id])

    def __repr__(self) -> str:
        return f"IndexedDiGraph(nodes={self.node_count}, edges={self.edge_count})"
