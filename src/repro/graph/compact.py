"""Immutable integer-indexed graph snapshot for hot loops.

Monte-Carlo diffusion simulates tens of thousands of BFS-like sweeps; doing
that over ``dict``-keyed adjacency is needlessly slow. An
:class:`IndexedDiGraph` freezes a :class:`repro.graph.digraph.DiGraph` into:

* a stable node list (``labels``) and reverse index (``index_of``),
* out- and in-adjacency as ``list[list[int]]`` (tuple-of-tuples, actually,
  to guarantee immutability),

so the simulators run on small-int arrays and convert back to labels only
at the API boundary.

Two ingest paths exist for raw CSR arrays (:meth:`IndexedDiGraph.from_csr`):
the zero-dependency path validates element by element and builds the
adjacency eagerly, while NumPy-array inputs (the shared-memory worker
rebuild in :mod:`repro.exec.shm`) are validated **vectorized** and keep
the arrays as the graph's CSR export directly — the Python tuple
adjacency is then built lazily, only if something actually walks
``graph.out``/``graph.inn`` (the NumPy kernels never do).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import GraphError, NodeNotFoundError

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

__all__ = ["CSRArrays", "IndexedDiGraph"]


def _is_ndarray_triple(indptr, indices, weights) -> bool:
    """True when all inputs are NumPy arrays (the vectorized ingest path)."""
    if _np is None:
        return False
    arrays = (indptr, indices) + (() if weights is None else (weights,))
    return all(isinstance(a, _np.ndarray) for a in arrays)


class CSRArrays:
    """Compressed-sparse-row snapshot of the out-adjacency.

    The flat-array form the batched diffusion kernels
    (:mod:`repro.kernels`) consume: ``indices[indptr[u]:indptr[u + 1]]``
    are the out-neighbor ids of node ``u`` and ``weights`` is parallel to
    ``indices``. By default all three are plain tuples of Python numbers
    so the core stays zero-dependency; NumPy-array inputs are kept as
    int64/float64 arrays instead (same values, no per-element boxing) —
    the form shared-memory workers rebuild graphs from.

    Attributes:
        indptr: row pointers, length ``node_count + 1``.
        indices: flat out-neighbor ids, ``edge_count`` long.
        weights: flat edge weights, parallel to ``indices``.
    """

    __slots__ = ("indptr", "indices", "weights")

    def __init__(
        self,
        indptr: Sequence[int],
        indices: Sequence[int],
        weights: Sequence[float],
    ) -> None:
        if _is_ndarray_triple(indptr, indices, weights):
            self.indptr = _np.asarray(indptr, dtype=_np.int64)
            self.indices = _np.asarray(indices, dtype=_np.int64)
            self.weights = _np.asarray(weights, dtype=_np.float64)
        else:
            self.indptr = tuple(int(p) for p in indptr)
            self.indices = tuple(int(i) for i in indices)
            self.weights = tuple(float(w) for w in weights)
        if len(self.weights) != len(self.indices):
            raise GraphError(
                f"weights ({len(self.weights)}) must parallel indices "
                f"({len(self.indices)})"
            )

    @property
    def node_count(self) -> int:
        """Number of rows."""
        return len(self.indptr) - 1

    @property
    def edge_count(self) -> int:
        """Number of stored edges."""
        return len(self.indices)

    def row(self, node_id: int) -> Tuple[int, ...]:
        """Out-neighbor ids of one node, as a tuple of Python ints."""
        lo, hi = self.indptr[node_id], self.indptr[node_id + 1]
        return tuple(int(i) for i in self.indices[lo:hi])

    def out_degrees(self) -> List[int]:
        """Out-degree of every node, in id order."""
        return [
            int(self.indptr[u + 1] - self.indptr[u])
            for u in range(self.node_count)
        ]

    def in_degrees(self) -> List[int]:
        """In-degree of every node, in id order (bincount of ``indices``)."""
        counts = [0] * self.node_count
        for head in self.indices:
            counts[head] += 1
        return counts

    def __repr__(self) -> str:
        return f"CSRArrays(nodes={self.node_count}, edges={self.edge_count})"


def _validate_csr_ndarrays(n: int, indptr, indices, weights) -> None:
    """Vectorized equivalent of the scalar ``from_csr`` validation loop.

    Raises the same :class:`GraphError` messages as the element-wise
    path, found via the first offending position, so callers cannot tell
    which path rejected their input.
    """
    steps = _np.diff(indptr)
    if _np.any(steps < 0):
        u = int(_np.argmax(steps < 0))
        raise GraphError(
            f"indptr decreases at row {u}: {int(indptr[u])} -> "
            f"{int(indptr[u + 1])}"
        )
    if len(indices) == 0:
        return
    rows = _np.repeat(_np.arange(n, dtype=_np.int64), steps)
    out_of_range = (indices < 0) | (indices >= n)
    if _np.any(out_of_range):
        position = int(_np.argmax(out_of_range))
        raise GraphError(
            f"edge index {int(indices[position])} out of range [0, {n}) "
            f"in row {int(rows[position])}"
        )
    loops = indices == rows
    if _np.any(loops):
        raise GraphError(
            f"self-loop on node id {int(rows[int(_np.argmax(loops))])} "
            f"rejected"
        )
    # Duplicate edges within a row = duplicate (row, head) keys.
    keys = _np.sort(rows * _np.int64(n) + indices)
    duplicate = keys[1:] == keys[:-1]
    if _np.any(duplicate):
        key = int(keys[int(_np.argmax(duplicate))])
        raise GraphError(f"duplicate edge {key // n} -> {key % n} rejected")
    if weights is not None and _np.any(weights <= 0):
        position = int(_np.argmax(weights <= 0))
        raise GraphError(
            f"edge weight must be > 0, got {float(weights[position])!r} on "
            f"{int(rows[position])} -> {int(indices[position])}"
        )


class IndexedDiGraph:
    """Frozen integer view of a directed graph.

    Attributes:
        labels: tuple mapping node id -> original node label.
        out: tuple of tuples; ``out[u]`` lists out-neighbor ids of ``u``.
        inn: tuple of tuples; ``inn[u]`` lists in-neighbor ids of ``u``.

    ``out``/``inn``/``out_weights`` are materialised lazily when the
    graph was built from validated NumPy CSR arrays (see
    :meth:`from_csr`); every other construction path builds them
    eagerly, exactly as before.
    """

    __slots__ = (
        "labels",
        "_out",
        "_inn",
        "_out_weights",
        "_index_of",
        "edge_count",
        "_csr",
        "version",
    )

    def __init__(
        self,
        labels: Sequence[object],
        out: Sequence[Sequence[int]],
        inn: Sequence[Sequence[int]],
        out_weights: Sequence[Sequence[float]] = None,
    ) -> None:
        if not (len(labels) == len(out) == len(inn)):
            raise ValueError("labels/out/inn must have equal length")
        self.labels: Tuple[object, ...] = tuple(labels)
        self._out: Optional[Tuple[Tuple[int, ...], ...]] = tuple(
            tuple(n) for n in out
        )
        self._inn: Optional[Tuple[Tuple[int, ...], ...]] = tuple(
            tuple(n) for n in inn
        )
        if out_weights is None:
            self._out_weights: Optional[Tuple[Tuple[float, ...], ...]] = tuple(
                (1.0,) * len(neighbors) for neighbors in self._out
            )
        else:
            self._out_weights = tuple(tuple(w) for w in out_weights)
            if len(self._out_weights) != len(self._out) or any(
                len(weights) != len(neighbors)
                for weights, neighbors in zip(self._out_weights, self._out)
            ):
                raise ValueError("out_weights must parallel out adjacency")
        self._index_of: Dict[object, int] = {
            label: index for index, label in enumerate(self.labels)
        }
        if len(self._index_of) != len(self.labels):
            raise ValueError("node labels must be unique")
        self.edge_count = sum(len(neighbors) for neighbors in self._out)
        self._csr: Optional[CSRArrays] = None
        #: bumped by :meth:`apply_updates`; caches keyed on the graph
        #: (executor publications, worker materialisations) compare it.
        self.version = 0

    # -- lazy adjacency ----------------------------------------------------------

    @property
    def out(self) -> Tuple[Tuple[int, ...], ...]:
        """Out-adjacency tuples (built on first access for CSR-born graphs)."""
        if self._out is None:
            self._build_adjacency()
        return self._out

    @property
    def inn(self) -> Tuple[Tuple[int, ...], ...]:
        """In-adjacency tuples (built on first access for CSR-born graphs)."""
        if self._inn is None:
            self._build_adjacency()
        return self._inn

    @property
    def out_weights(self) -> Tuple[Tuple[float, ...], ...]:
        """Edge weights parallel to :attr:`out`."""
        if self._out_weights is None:
            self._build_adjacency()
        return self._out_weights

    def _build_adjacency(self) -> None:
        """Materialise the Python adjacency tuples from the CSR arrays."""
        csr = self._csr
        indptr = [int(p) for p in csr.indptr]
        indices = [int(i) for i in csr.indices]
        weights = [float(w) for w in csr.weights]
        n = len(self.labels)
        out: List[Tuple[int, ...]] = []
        wout: List[Tuple[float, ...]] = []
        inn: List[List[int]] = [[] for _ in range(n)]
        for u in range(n):
            lo, hi = indptr[u], indptr[u + 1]
            out.append(tuple(indices[lo:hi]))
            wout.append(tuple(weights[lo:hi]))
            for head in indices[lo:hi]:
                inn[head].append(u)
        self._out = tuple(out)
        self._out_weights = tuple(wout)
        self._inn = tuple(tuple(heads) for heads in inn)

    @classmethod
    def from_digraph(cls, graph) -> "IndexedDiGraph":
        """Snapshot a :class:`~repro.graph.digraph.DiGraph`.

        Node ids follow the graph's insertion order, so repeated snapshots
        of the same graph are identical — important for seeded
        reproducibility of the simulators. Edge weights are carried along
        (parallel to ``out``) for the weighted diffusion variants.
        """
        labels = list(graph.nodes())
        position = {label: index for index, label in enumerate(labels)}
        out: List[List[int]] = [[] for _ in labels]
        inn: List[List[int]] = [[] for _ in labels]
        weights: List[List[float]] = [[] for _ in labels]
        for tail, head, weight in graph.weighted_edges():
            out[position[tail]].append(position[head])
            weights[position[tail]].append(weight)
            inn[position[head]].append(position[tail])
        return cls(labels, out, inn, out_weights=weights)

    @classmethod
    def from_csr(
        cls,
        labels: Sequence[object],
        indptr: Sequence[int],
        indices: Sequence[int],
        weights: Optional[Sequence[float]] = None,
    ) -> "IndexedDiGraph":
        """Build a graph from validated CSR arrays (the kernel ingest path).

        The inverse of :meth:`csr`: ``IndexedDiGraph.from_csr(g.labels,
        *astuple(g.csr()))`` reproduces ``g`` exactly. Validation is
        strict because raw arrays carry none of :class:`DiGraph`'s
        invariants:

        * ``indptr`` must start at 0, be non-decreasing, have one entry
          per node plus one, and end at ``len(indices)``;
        * every index must be a valid node id;
        * self-loops and duplicate edges within a row are rejected (the
          diffusion kernels treat a self-loop as an always-wasted trial,
          so one in raw input almost certainly means corrupted data);
        * ``weights``, when given, must parallel ``indices`` and be
          strictly positive (matching :meth:`DiGraph.add_edge`).

        NumPy-array inputs take a vectorized path: the same checks run
        as array operations, the arrays become the graph's CSR export
        directly, and the Python adjacency tuples are built lazily on
        first access — which is what lets shared-memory pool workers
        rebuild a graph in O(1) Python work (see :mod:`repro.exec.shm`).
        """
        n = len(labels)
        if len(indptr) != n + 1:
            raise GraphError(
                f"indptr must have {n + 1} entries for {n} labels, "
                f"got {len(indptr)}"
            )
        if n and indptr[0] != 0:
            raise GraphError(f"indptr must start at 0, got {indptr[0]!r}")
        if not n and len(indices):
            raise GraphError("indices non-empty but there are no nodes")
        if n and indptr[-1] != len(indices):
            raise GraphError(
                f"indptr must end at len(indices)={len(indices)}, "
                f"got {indptr[-1]!r}"
            )
        if weights is not None and len(weights) != len(indices):
            raise GraphError(
                f"weights ({len(weights)}) must parallel indices "
                f"({len(indices)})"
            )
        if _is_ndarray_triple(indptr, indices, weights):
            indptr = _np.asarray(indptr, dtype=_np.int64)
            indices = _np.asarray(indices, dtype=_np.int64)
            if weights is None:
                weights = _np.ones(len(indices), dtype=_np.float64)
            else:
                weights = _np.asarray(weights, dtype=_np.float64)
            _validate_csr_ndarrays(n, indptr, indices, weights)
            return cls._from_csr_arrays(
                labels, CSRArrays(indptr, indices, weights)
            )
        out: List[List[int]] = []
        inn: List[List[int]] = [[] for _ in range(n)]
        row_weights: List[List[float]] = []
        for u in range(n):
            lo, hi = indptr[u], indptr[u + 1]
            if hi < lo:
                raise GraphError(f"indptr decreases at row {u}: {lo} -> {hi}")
            row: List[int] = []
            seen = set()
            wrow: List[float] = []
            for position in range(lo, hi):
                head = int(indices[position])
                if not 0 <= head < n:
                    raise GraphError(
                        f"edge index {head} out of range [0, {n}) in row {u}"
                    )
                if head == u:
                    raise GraphError(f"self-loop on node id {u} rejected")
                if head in seen:
                    raise GraphError(f"duplicate edge {u} -> {head} rejected")
                seen.add(head)
                row.append(head)
                weight = 1.0 if weights is None else float(weights[position])
                if weight <= 0:
                    raise GraphError(
                        f"edge weight must be > 0, got {weight!r} on "
                        f"{u} -> {head}"
                    )
                wrow.append(weight)
                inn[head].append(u)
            out.append(row)
            row_weights.append(wrow)
        return cls(labels, out, inn, out_weights=row_weights)

    @classmethod
    def _from_csr_arrays(
        cls, labels: Sequence[object], csr: CSRArrays
    ) -> "IndexedDiGraph":
        """Internal: wrap already-validated CSR arrays without adjacency."""
        graph = cls.__new__(cls)
        graph.labels = tuple(labels)
        graph._out = None
        graph._inn = None
        graph._out_weights = None
        graph._index_of = {
            label: index for index, label in enumerate(graph.labels)
        }
        if len(graph._index_of) != len(graph.labels):
            raise ValueError("node labels must be unique")
        graph.edge_count = int(csr.edge_count)
        graph._csr = csr
        graph.version = 0
        return graph

    def apply_updates(
        self,
        insertions: Iterable[Sequence] = (),
        deletions: Iterable[Sequence] = (),
    ) -> FrozenSet[int]:
        """Apply an edge-update batch in place (the dynamic-graph path).

        ``insertions`` holds ``(tail_id, head_id[, weight])`` entries
        (re-inserting an existing edge overwrites its weight in place);
        ``deletions`` holds ``(tail_id, head_id)`` pairs that must name
        existing edges. The node set is fixed. The batch is validated
        before anything mutates, the memoized :meth:`csr` export is
        dropped, and :attr:`version` is bumped.

        Returns:
            The frozen set of touched endpoint ids — both ends of every
            mutated edge (see :mod:`repro.graph.overlay`).
        """
        from repro.graph.overlay import apply_updates

        return apply_updates(self, insertions, deletions)

    def csr(self) -> CSRArrays:
        """The cached CSR snapshot of the out-adjacency (see :class:`CSRArrays`).

        The memo is dropped (and rebuilt on next call) whenever
        :meth:`apply_updates` mutates the graph — a stale export can
        never be served after an update.
        """
        if self._csr is None:
            indptr = [0]
            indices: List[int] = []
            weights: List[float] = []
            for neighbors, row_weights in zip(self.out, self.out_weights):
                indices.extend(neighbors)
                weights.extend(row_weights)
                indptr.append(len(indices))
            self._csr = CSRArrays(indptr, indices, weights)
        return self._csr

    # -- basic accessors -------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self.labels)

    def __len__(self) -> int:
        return len(self.labels)

    def index(self, label: object) -> int:
        """Node id for ``label``; raises :class:`NodeNotFoundError` if absent."""
        try:
            return self._index_of[label]
        except KeyError:
            raise NodeNotFoundError(label) from None

    def indices(self, labels: Iterable[object]) -> List[int]:
        """Node ids for many labels."""
        return [self.index(label) for label in labels]

    def has_label(self, label: object) -> bool:
        """Whether ``label`` names a node of this graph."""
        return label in self._index_of

    def label_set(self, ids: Iterable[int]) -> set:
        """Original labels for a collection of node ids."""
        return {self.labels[node_id] for node_id in ids}

    def out_degree(self, node_id: int) -> int:
        """Out-degree of ``node_id`` (the paper's ``d_out``)."""
        return len(self.out[node_id])

    def in_degree(self, node_id: int) -> int:
        """In-degree of ``node_id``."""
        return len(self.inn[node_id])

    def __repr__(self) -> str:
        return f"IndexedDiGraph(nodes={self.node_count}, edges={self.edge_count})"
