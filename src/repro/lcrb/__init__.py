"""The Least Cost Rumor Blocking problem layer.

* :mod:`repro.lcrb.problem` — the validated problem objects: LCRB-P
  (protect an α fraction of bridge ends, OPOAO) and LCRB-D (protect all of
  them, DOAM) — Definitions 2 and 3.
* :mod:`repro.lcrb.evaluation` — protector-set evaluation: infected-per-
  hop series, bridge-end protection statistics (the quantities plotted in
  Fig. 4-9).
* :mod:`repro.lcrb.pipeline` — the end-to-end flow: detect communities,
  choose the rumor community, draw rumor seeds, find bridge ends, select
  protectors, evaluate; ``service_from_context`` hands a resolved
  instance to the warm query service (:mod:`repro.serve`).
* :mod:`repro.lcrb.gossip_blocking` — the same protector-selection
  question re-scored on the message-passing gossip workload
  (:mod:`repro.gossip`): messages sent versus final infected.
"""

from repro.lcrb.evaluation import EvaluationResult, evaluate_protectors
from repro.lcrb.gossip_blocking import (
    GossipBlockingResult,
    GossipBlockingScenario,
    GossipStrategyRow,
    default_gossip_selectors,
)
from repro.lcrb.pipeline import (
    build_context,
    draw_rumor_seeds,
    service_from_context,
)
from repro.lcrb.problem import LCRBDProblem, LCRBPProblem, LCRBProblem

__all__ = [
    "LCRBProblem",
    "LCRBPProblem",
    "LCRBDProblem",
    "EvaluationResult",
    "evaluate_protectors",
    "build_context",
    "draw_rumor_seeds",
    "service_from_context",
    "GossipBlockingResult",
    "GossipBlockingScenario",
    "GossipStrategyRow",
    "default_gossip_selectors",
]
