"""The Least Cost Rumor Blocking problem layer.

* :mod:`repro.lcrb.problem` — the validated problem objects: LCRB-P
  (protect an α fraction of bridge ends, OPOAO) and LCRB-D (protect all of
  them, DOAM) — Definitions 2 and 3.
* :mod:`repro.lcrb.evaluation` — protector-set evaluation: infected-per-
  hop series, bridge-end protection statistics (the quantities plotted in
  Fig. 4-9).
* :mod:`repro.lcrb.pipeline` — the end-to-end flow: detect communities,
  choose the rumor community, draw rumor seeds, find bridge ends, select
  protectors, evaluate; ``service_from_context`` hands a resolved
  instance to the warm query service (:mod:`repro.serve`).
* :mod:`repro.lcrb.gossip_blocking` — the same protector-selection
  question re-scored on the message-passing gossip workload
  (:mod:`repro.gossip`): messages sent versus final infected.
* :mod:`repro.lcrb.multicascade` — K-cascade scenarios over the
  generalized engine: distributed (uncoordinated) blocking campaigns and
  impression-domination scoring, each with an exact small-graph oracle.
"""

from repro.lcrb.evaluation import (
    EvaluationResult,
    evaluate_protectors,
    resolve_seed_labels,
)
from repro.lcrb.multicascade import (
    DistributedBlockingResult,
    DistributedBlockingScenario,
    ImpressionResult,
    ImpressionScenario,
)
from repro.lcrb.gossip_blocking import (
    GossipBlockingResult,
    GossipBlockingScenario,
    GossipStrategyRow,
    default_gossip_selectors,
)
from repro.lcrb.pipeline import (
    build_context,
    draw_rumor_seeds,
    service_from_context,
)
from repro.lcrb.problem import LCRBDProblem, LCRBPProblem, LCRBProblem

__all__ = [
    "LCRBProblem",
    "LCRBPProblem",
    "LCRBDProblem",
    "EvaluationResult",
    "evaluate_protectors",
    "resolve_seed_labels",
    "DistributedBlockingResult",
    "DistributedBlockingScenario",
    "ImpressionResult",
    "ImpressionScenario",
    "build_context",
    "draw_rumor_seeds",
    "service_from_context",
    "GossipBlockingResult",
    "GossipBlockingScenario",
    "GossipStrategyRow",
    "default_gossip_selectors",
]
