"""K-cascade rumor-blocking scenarios over the generalized diffusion core.

The paper's model is one rumor versus one positive campaign (K=2). Two
questions from the follow-up literature need more cascades:

* **Distributed blocking** (arXiv:1711.07412): several positive
  campaigns each pick their own blocking seeds *without coordinating*.
  :class:`DistributedBlockingScenario` runs each campaign's greedy
  selection independently, races all K cascades, and reports the **price
  of non-cooperation** — the ratio of the distributed mean infected count
  to the one a centralized planner with the pooled budget achieves.
* **Impression counting** (arXiv:2303.10068): a node is not won by
  whoever touches it but by whoever *dominates its impressions* — a
  weighted count of activated in-neighbors. :class:`ImpressionScenario`
  scores a K-cascade race by the expected number of rumor-dominated
  nodes under a domination threshold.

Both scenarios come with **exact small-graph oracles**: the live-edge
enumeration helpers at the bottom compute the same objectives by summing
over all ``2^|E|`` deterministic worlds, which is what the scenario tests
check the Monte-Carlo estimates (and the kernel backends) against.
"""

from __future__ import annotations

from itertools import product
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.algorithms.base import ProtectorSelector, SelectionContext
from repro.diffusion.base import (
    DEFAULT_MAX_HOPS,
    INACTIVE,
    CascadeSet,
    DiffusionModel,
    SeedSets,
)
from repro.errors import SeedError, ValidationError
from repro.graph.compact import IndexedDiGraph
from repro.graph.digraph import Node
from repro.lcrb.evaluation import resolve_seed_labels
from repro.rng import RngStream
from repro.utils.stats import RunningStats
from repro.utils.tables import format_table
from repro.utils.validation import check_positive

__all__ = [
    "CampaignSelection",
    "DistributedBlockingResult",
    "DistributedBlockingScenario",
    "ImpressionResult",
    "ImpressionScenario",
    "impression_counts",
    "dominated_count",
    "exact_race",
    "exact_cascade_expectation",
    "exact_dominated_expectation",
]


def resolve_campaign_seeds(
    indexed: IndexedDiGraph,
    campaigns: Sequence[Iterable[Node]],
    rumor_ids: Sequence[int],
) -> List[List[int]]:
    """Validate per-campaign seed labels and translate them to node ids.

    Each campaign's labels get the same all-at-once validation as
    :func:`~repro.lcrb.evaluation.resolve_seed_labels` (every unknown
    label named in one :class:`~repro.errors.SeedError`); overlap between
    campaigns or with the rumor seeds is left to
    :class:`~repro.diffusion.base.CascadeSet` so the message matches the
    engine's.
    """
    rumor_set = set(rumor_ids)
    resolved: List[List[int]] = []
    for index, labels in enumerate(campaigns):
        ids = resolve_seed_labels(indexed, labels, f"campaign {index + 1}")
        overlap = rumor_set & set(ids)
        if overlap:
            raise SeedError(
                f"campaign {index + 1} seeds overlap the rumor seeds: "
                f"{sorted(overlap)[:5]}"
            )
        resolved.append(ids)
    return resolved


# -- distributed blocking ------------------------------------------------------


class CampaignSelection(NamedTuple):
    """One positive campaign's independent pick, before and after dedup."""

    campaign: int
    #: node ids the campaign's own greedy run chose.
    chosen: Tuple[int, ...]
    #: the subset it actually fields (earlier campaigns claim duplicates).
    kept: Tuple[int, ...]

    @property
    def wasted(self) -> int:
        """Seeds spent on nodes an earlier campaign already took."""
        return len(self.chosen) - len(self.kept)


class DistributedBlockingResult:
    """Outcome of one distributed-vs-centralized comparison.

    Attributes:
        selections: per-campaign picks (dedup order = cascade order).
        distributed_mean_infected: mean final rumor count, K-cascade race.
        centralized_mean_infected: mean final rumor count when one planner
            spends the pooled budget in a single two-cascade race.
        price_of_noncooperation: ``distributed / centralized`` (``None``
            when the centralized planner already reaches zero infections
            but the distributed campaigns do not — the ratio diverges).
        distributed_series / centralized_series: mean cumulative infected
            per hop (the figures' y-axis).
    """

    def __init__(
        self,
        selections: List[CampaignSelection],
        distributed_mean_infected: float,
        centralized_mean_infected: float,
        distributed_series: List[float],
        centralized_series: List[float],
        runs: int,
        priority: Tuple[int, ...],
    ) -> None:
        self.selections = list(selections)
        self.distributed_mean_infected = float(distributed_mean_infected)
        self.centralized_mean_infected = float(centralized_mean_infected)
        self.distributed_series = list(distributed_series)
        self.centralized_series = list(centralized_series)
        self.runs = int(runs)
        self.priority = tuple(priority)

    @property
    def wasted_budget(self) -> int:
        """Total seeds lost to duplicated (uncoordinated) picks."""
        return sum(selection.wasted for selection in self.selections)

    @property
    def price_of_noncooperation(self) -> Optional[float]:
        if self.centralized_mean_infected > 0.0:
            return self.distributed_mean_infected / self.centralized_mean_infected
        if self.distributed_mean_infected == 0.0:
            return 1.0
        return None

    def to_table(self) -> str:
        """The comparison as an aligned text table (CLI output)."""
        body = [
            [
                f"campaign {selection.campaign}",
                str(len(selection.chosen)),
                str(len(selection.kept)),
                str(selection.wasted),
            ]
            for selection in self.selections
        ]
        price = self.price_of_noncooperation
        body.append(
            [
                "price of non-cooperation",
                f"{self.distributed_mean_infected:.2f}",
                f"{self.centralized_mean_infected:.2f}",
                "inf" if price is None else f"{price:.3f}",
            ]
        )
        return format_table(
            ["row", "chosen/distributed", "kept/centralized", "wasted/price"],
            body,
            title=f"distributed blocking ({self.runs} replicas)",
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict report (``--json`` / benchmark output)."""
        return {
            "runs": self.runs,
            "priority": list(self.priority),
            "campaigns": [
                {
                    "campaign": selection.campaign,
                    "chosen": list(selection.chosen),
                    "kept": list(selection.kept),
                    "wasted": selection.wasted,
                }
                for selection in self.selections
            ],
            "wasted_budget": self.wasted_budget,
            "distributed_mean_infected": self.distributed_mean_infected,
            "centralized_mean_infected": self.centralized_mean_infected,
            "price_of_noncooperation": self.price_of_noncooperation,
            "distributed_series": self.distributed_series,
            "centralized_series": self.centralized_series,
        }

    def __repr__(self) -> str:
        price = self.price_of_noncooperation
        return (
            f"DistributedBlockingResult(campaigns={len(self.selections)}, "
            f"price={'inf' if price is None else format(price, '.3f')})"
        )


#: builds campaign ``index``'s selector given its private stream.
SelectorFactory = Callable[[int, RngStream], ProtectorSelector]


class DistributedBlockingScenario:
    """Several positive campaigns block a rumor without coordinating.

    Each of the ``campaigns`` positive campaigns runs its own greedy
    selection of ``budget`` seeds against the *same* instance — blind to
    the other campaigns — then all K cascades race at once. Duplicated
    picks are resolved by cascade order (the earlier campaign keeps the
    node; the later one has simply wasted that seed). The centralized
    baseline gives one planner the pooled ``campaigns * budget`` and runs
    the paper's two-cascade race.

    Args:
        model: diffusion model for both selection and evaluation.
        campaigns: number of positive campaigns (K - 1, at least 1).
        budget: seeds per campaign.
        runs: Monte-Carlo replicas per evaluation.
        select_runs: coupled replicas per greedy sigma estimate.
        max_hops: horizon per run.
        priority: cascade tie-break rule or explicit permutation.
        selector_factory: optional override building each campaign's
            selector (campaign index, private stream); the default is
            :class:`~repro.algorithms.greedy.GreedySelector` on ``model``.
            The centralized planner uses campaign index ``-1``.
        campaign_seeds: optional explicit per-campaign seed labels,
            skipping selection entirely (validated all-at-once per
            campaign).
    """

    def __init__(
        self,
        model: DiffusionModel,
        campaigns: int = 2,
        budget: int = 2,
        runs: int = 100,
        select_runs: int = 8,
        max_hops: int = DEFAULT_MAX_HOPS,
        priority: Union[str, Sequence[int]] = "positives-first",
        selector_factory: Optional[SelectorFactory] = None,
        campaign_seeds: Optional[Sequence[Iterable[Node]]] = None,
    ) -> None:
        self.model = model
        self.campaigns = int(check_positive(campaigns, "campaigns"))
        self.budget = int(check_positive(budget, "budget"))
        self.runs = int(check_positive(runs, "runs"))
        self.select_runs = int(check_positive(select_runs, "select_runs"))
        self.max_hops = int(check_positive(max_hops, "max_hops"))
        self.priority = priority
        self.selector_factory = selector_factory
        if campaign_seeds is not None and len(campaign_seeds) != self.campaigns:
            raise ValidationError(
                f"campaign_seeds has {len(campaign_seeds)} entries for "
                f"{self.campaigns} campaigns"
            )
        self.campaign_seeds = campaign_seeds

    def _selector(self, campaign: int, rng: RngStream) -> ProtectorSelector:
        if self.selector_factory is not None:
            return self.selector_factory(campaign, rng)
        from repro.algorithms.greedy import GreedySelector

        return GreedySelector(
            model=self.model,
            runs=self.select_runs,
            max_hops=self.max_hops,
            rng=rng,
        )

    def _campaign_picks(
        self, context: SelectionContext, rng: RngStream
    ) -> List[List[int]]:
        """Each campaign's independent choice, as node ids (pre-dedup)."""
        indexed = context.indexed
        if self.campaign_seeds is not None:
            return resolve_campaign_seeds(
                indexed, self.campaign_seeds, context.rumor_seed_ids()
            )
        picks: List[List[int]] = []
        for campaign in range(self.campaigns):
            selector = self._selector(campaign, rng.fork("campaign", campaign))
            chosen = selector.select(context, self.budget)
            picks.append(indexed.indices(dict.fromkeys(chosen)))
        return picks

    def _mean_infected(
        self,
        indexed: IndexedDiGraph,
        seeds: CascadeSet,
        rng: RngStream,
    ) -> Tuple[float, List[float]]:
        """Mean final rumor count + mean infected-per-hop series."""
        final = RunningStats()
        per_hop = [RunningStats() for _ in range(self.max_hops + 1)]
        replicas = self.runs if self.model.stochastic else 1
        for replica in range(replicas):
            outcome = self.model.run(
                indexed,
                seeds,
                rng=rng.replica(replica) if self.model.stochastic else None,
                max_hops=self.max_hops,
            )
            final.add(outcome.trace.cascade_at(0, self.max_hops))
            for hop in range(self.max_hops + 1):
                per_hop[hop].add(outcome.trace.cascade_at(0, hop))
        return final.mean, [stats.mean for stats in per_hop]

    def run(
        self, context: SelectionContext, rng: RngStream
    ) -> DistributedBlockingResult:
        """Select per campaign, race all cascades, compare to centralized.

        Both evaluations share the replica streams (common random
        numbers), so the price ratio is not inflated by sampling noise.
        """
        indexed = context.indexed
        rumor_ids = context.rumor_seed_ids()
        picks = self._campaign_picks(context, rng)

        taken = set(rumor_ids)
        cascades: List[Sequence[int]] = [rumor_ids]
        selections: List[CampaignSelection] = []
        for campaign, chosen in enumerate(picks, start=1):
            kept = [node for node in chosen if node not in taken]
            taken.update(kept)
            cascades.append(kept)
            selections.append(
                CampaignSelection(campaign, tuple(chosen), tuple(kept))
            )

        eval_rng = rng.fork("eval")
        distributed_seeds = CascadeSet(cascades, priority=self.priority)
        distributed_mean, distributed_series = self._mean_infected(
            indexed, distributed_seeds, eval_rng
        )

        if self.campaign_seeds is not None:
            pooled = [node for chosen in picks for node in chosen]
            central_ids = [
                node for node in dict.fromkeys(pooled) if node not in rumor_ids
            ]
        else:
            central = self._selector(-1, rng.fork("campaign", "central"))
            chosen = central.select(context, self.campaigns * self.budget)
            central_ids = indexed.indices(dict.fromkeys(chosen))
        centralized_seeds = SeedSets(rumors=rumor_ids, protectors=central_ids)
        centralized_mean, centralized_series = self._mean_infected(
            indexed, centralized_seeds, eval_rng
        )

        return DistributedBlockingResult(
            selections,
            distributed_mean,
            centralized_mean,
            distributed_series,
            centralized_series,
            runs=self.runs,
            priority=distributed_seeds.priority,
        )

    def __repr__(self) -> str:
        return (
            f"DistributedBlockingScenario(model={self.model.name}, "
            f"campaigns={self.campaigns}, budget={self.budget})"
        )


# -- impression counting -------------------------------------------------------


def impression_counts(
    indexed: IndexedDiGraph,
    states: Sequence[int],
    weights: Sequence[float],
    node: int,
) -> List[float]:
    """Per-cascade weighted impressions one node receives.

    Cascade ``k`` impresses ``node`` with weight ``weights[k]`` once per
    cascade-``k`` active in-neighbor, plus once for ``node`` itself when
    cascade ``k`` holds it — so activated nodes count their own voice.
    """
    counts = [0] * len(weights)
    state = states[node]
    if state != INACTIVE:
        counts[state - 1] += 1
    for tail in indexed.inn[node]:
        tail_state = states[tail]
        if tail_state != INACTIVE:
            counts[tail_state - 1] += 1
    return [weights[k] * counts[k] for k in range(len(weights))]


def dominated_count(
    indexed: IndexedDiGraph,
    states: Sequence[int],
    weights: Sequence[float],
    threshold: float,
) -> int:
    """Nodes whose impressions the rumor dominates in this outcome.

    A node is rumor-dominated when the rumor's weighted impressions reach
    ``threshold`` *and* strictly exceed all positive campaigns combined.
    """
    dominated = 0
    for node in range(indexed.node_count):
        impressions = impression_counts(indexed, states, weights, node)
        rumor = impressions[0]
        if rumor >= threshold and rumor > sum(impressions[1:]):
            dominated += 1
    return dominated


class ImpressionResult:
    """Aggregated impression-domination outcome of one K-cascade race.

    Attributes:
        dominated: stats of the per-run rumor-dominated node count (the
            scenario's objective).
        cascade_means: mean final activation count per cascade.
        weights / threshold: the scoring configuration evaluated.
    """

    def __init__(
        self,
        dominated: RunningStats,
        cascade_means: List[float],
        weights: Sequence[float],
        threshold: float,
        runs: int,
        priority: Tuple[int, ...],
    ) -> None:
        self.dominated = dominated
        self.cascade_means = list(cascade_means)
        self.weights = list(weights)
        self.threshold = float(threshold)
        self.runs = int(runs)
        self.priority = tuple(priority)

    @property
    def mean_dominated(self) -> float:
        return self.dominated.mean

    def to_table(self) -> str:
        body = [
            ["rumor-dominated nodes (mean)", f"{self.mean_dominated:.2f}"],
            ["rumor-dominated nodes (max)", f"{self.dominated.maximum:.0f}"],
            ["threshold", f"{self.threshold:g}"],
        ]
        for cascade, mean in enumerate(self.cascade_means):
            name = "rumor" if cascade == 0 else f"campaign {cascade}"
            body.append(
                [
                    f"{name} (w={self.weights[cascade]:g})",
                    f"{mean:.2f} mean nodes",
                ]
            )
        return format_table(
            ["quantity", "value"],
            body,
            title=f"impression domination ({self.runs} replicas)",
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "runs": self.runs,
            "priority": list(self.priority),
            "weights": self.weights,
            "threshold": self.threshold,
            "mean_dominated": self.mean_dominated,
            "max_dominated": self.dominated.maximum,
            "cascade_means": self.cascade_means,
        }

    def __repr__(self) -> str:
        return (
            f"ImpressionResult(mean_dominated={self.mean_dominated:.2f}, "
            f"runs={self.runs})"
        )


class ImpressionScenario:
    """Score a K-cascade race by expected rumor-dominated impressions.

    Args:
        model: diffusion model producing the final states.
        weights: per-cascade impression weight, rumor first; length fixes
            K, and must cover every campaign passed to :meth:`run`.
        threshold: minimum rumor impression mass to dominate a node.
        runs: Monte-Carlo replicas.
        max_hops: horizon per run.
        priority: cascade tie-break rule or explicit permutation.
        checkpoint: a path or :class:`~repro.exec.checkpoint.\
            CheckpointStore`; completed replicas are saved under an
            ``impressions`` entry whose run key covers the cascade seed
            sets, priority, weights, and threshold — a checkpoint from
            any other configuration refuses to resume. ``runs`` stays
            outside the key, so a shorter run's prefix seeds a longer one.
        checkpoint_every: replicas per checkpointed batch.
    """

    def __init__(
        self,
        model: DiffusionModel,
        weights: Sequence[float],
        threshold: float = 1.0,
        runs: int = 100,
        max_hops: int = DEFAULT_MAX_HOPS,
        priority: Union[str, Sequence[int]] = "positives-first",
        checkpoint=None,
        checkpoint_every: int = 64,
    ) -> None:
        self.model = model
        self.weights = [float(weight) for weight in weights]
        if len(self.weights) < 2:
            raise ValidationError(
                f"need a weight per cascade (rumor + campaigns); "
                f"got {len(self.weights)}"
            )
        if any(weight <= 0.0 for weight in self.weights):
            raise ValidationError("impression weights must be positive")
        self.threshold = float(threshold)
        if self.threshold <= 0.0:
            raise ValidationError("threshold must be positive")
        self.runs = int(check_positive(runs, "runs"))
        self.max_hops = int(check_positive(max_hops, "max_hops"))
        self.priority = priority
        self.checkpoint = checkpoint
        self.checkpoint_every = int(
            check_positive(checkpoint_every, "checkpoint_every")
        )

    def build_seeds(
        self, context: SelectionContext, campaigns: Sequence[Iterable[Node]]
    ) -> CascadeSet:
        """Validate campaign labels and assemble the cascade seed sets."""
        if len(campaigns) != len(self.weights) - 1:
            raise ValidationError(
                f"{len(campaigns)} campaign seed set(s) for "
                f"{len(self.weights) - 1} campaign weight(s)"
            )
        rumor_ids = context.rumor_seed_ids()
        campaign_ids = resolve_campaign_seeds(
            context.indexed, campaigns, rumor_ids
        )
        return CascadeSet([rumor_ids] + campaign_ids, priority=self.priority)

    def _run_key(self, indexed: IndexedDiGraph, seeds: CascadeSet, rng) -> str:
        from repro.exec.checkpoint import run_key

        return run_key(
            kind="impressions",
            model=self.model.name,
            seed=rng.seed,
            max_hops=self.max_hops,
            nodes=indexed.node_count,
            edges=indexed.edge_count,
            cascades=[sorted(cascade) for cascade in seeds.cascades],
            priority=list(seeds.priority),
            weights=self.weights,
            threshold=self.threshold,
        )

    def run(
        self,
        context: SelectionContext,
        campaigns: Sequence[Iterable[Node]],
        rng: RngStream,
    ) -> ImpressionResult:
        """Race the cascades ``runs`` times and aggregate domination."""
        indexed = context.indexed
        seeds = self.build_seeds(context, campaigns)
        replicas = self.runs if self.model.stochastic else 1

        from repro.exec.checkpoint import as_store

        ckpt = as_store(self.checkpoint)
        rows: List[List[int]] = []  # [dominated, *cascade_counts] per run
        key = ""
        if ckpt is not None:
            key = self._run_key(indexed, seeds, rng)
            entry = ckpt.load("impressions", key)
            if entry is not None:
                rows = [
                    [int(value) for value in row]
                    for row in entry["state"]["rows"][:replicas]
                ]

        while len(rows) < replicas:
            stop = (
                replicas
                if ckpt is None
                else min(replicas, len(rows) + self.checkpoint_every)
            )
            for replica in range(len(rows), stop):
                outcome = self.model.run(
                    indexed,
                    seeds,
                    rng=rng.replica(replica) if self.model.stochastic else None,
                    max_hops=self.max_hops,
                )
                rows.append(
                    [
                        dominated_count(
                            indexed, outcome.states, self.weights, self.threshold
                        )
                    ]
                    + outcome.cascade_counts()
                )
            if ckpt is not None:
                ckpt.save(
                    "impressions", key, {"rows": rows}, rounds=len(rows)
                )

        dominated = RunningStats()
        cascade_totals = [0.0] * seeds.cascade_count
        for row in rows:
            dominated.add(row[0])
            for cascade in range(seeds.cascade_count):
                cascade_totals[cascade] += row[1 + cascade]
        cascade_means = [total / len(rows) for total in cascade_totals]
        return ImpressionResult(
            dominated,
            cascade_means,
            self.weights,
            self.threshold,
            runs=len(rows),
            priority=seeds.priority,
        )

    def __repr__(self) -> str:
        return (
            f"ImpressionScenario(model={self.model.name}, "
            f"K={len(self.weights)}, threshold={self.threshold:g})"
        )


# -- exact live-edge oracles ---------------------------------------------------


def exact_race(
    graph: IndexedDiGraph,
    seeds: CascadeSet,
    live: Sequence[bool],
    max_hops: int = DEFAULT_MAX_HOPS,
) -> List[int]:
    """Final states of the K-cascade race on one fixed live-edge world.

    ``live`` is indexed by CSR edge position. Deliberately a simple
    textbook BFS race — the independent ground truth the batched kernels
    and the per-run models are differentially tested against.
    """
    indptr = graph.csr().indptr
    states = [INACTIVE] * graph.node_count
    for cascade, members in enumerate(seeds.cascades):
        for node in members:
            states[node] = cascade + 1
    fronts = [sorted(members) for members in seeds.cascades]
    for _hop in range(max_hops):
        targets: List[set] = [set() for _ in fronts]
        claimed: set = set()
        for cascade in seeds.priority:
            for node in fronts[cascade]:
                base = indptr[node]
                for position, head in enumerate(graph.out[node]):
                    if (
                        live[base + position]
                        and states[head] == INACTIVE
                        and head not in claimed
                    ):
                        targets[cascade].add(head)
            claimed |= targets[cascade]
        if not claimed:
            break
        for cascade, chosen in enumerate(targets):
            for node in chosen:
                states[node] = cascade + 1
        fronts = [sorted(chosen) for chosen in targets]
    return states


def _enumerate_worlds(
    graph: IndexedDiGraph, probability: float
) -> Iterable[Tuple[Tuple[bool, ...], float]]:
    """All ``2^|E|`` live-edge masks with their IC probabilities."""
    edge_count = graph.edge_count
    if edge_count > 20:
        raise ValidationError(
            f"exact enumeration over 2^{edge_count} worlds is intractable; "
            f"use graphs with at most 20 edges"
        )
    for mask in product((False, True), repeat=edge_count):
        weight = 1.0
        for bit in mask:
            weight *= probability if bit else (1.0 - probability)
        yield mask, weight


def exact_cascade_expectation(
    graph: IndexedDiGraph,
    seeds: CascadeSet,
    probability: float,
    max_hops: int = DEFAULT_MAX_HOPS,
) -> List[float]:
    """Exact expected per-cascade final counts under live-edge IC.

    Sums the deterministic race over every live-edge world, weighted by
    ``p^live * (1-p)^dead`` — the quantity Monte-Carlo IC estimates.
    """
    expectations = [0.0] * seeds.cascade_count
    for mask, weight in _enumerate_worlds(graph, probability):
        states = exact_race(graph, seeds, mask, max_hops)
        for state in states:
            if state != INACTIVE:
                expectations[state - 1] += weight
    return expectations


def exact_dominated_expectation(
    graph: IndexedDiGraph,
    seeds: CascadeSet,
    weights: Sequence[float],
    threshold: float,
    probability: float,
    max_hops: int = DEFAULT_MAX_HOPS,
) -> float:
    """Exact expected rumor-dominated node count under live-edge IC.

    The :class:`ImpressionScenario` objective by full enumeration — what
    its Monte-Carlo estimate must converge to on small graphs.
    """
    expectation = 0.0
    for mask, weight in _enumerate_worlds(graph, probability):
        states = exact_race(graph, seeds, mask, max_hops)
        expectation += weight * dominated_count(graph, states, weights, threshold)
    return expectation
