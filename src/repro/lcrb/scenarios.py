"""Rumor-placement strategies: where do the originators sit?

The paper draws rumor originators uniformly from the rumor community.
A robustness question a downstream user will immediately ask is whether
the algorithms' advantages survive *adversarial* placement — rumors
started at the community's hubs, or right on its boundary. This module
provides the placement strategies; the robustness benchmark
(``benchmarks/bench_robustness_placement.py``) sweeps them.
"""

from __future__ import annotations

from typing import List

from repro.community.structure import CommunityStructure
from repro.errors import SeedError, ValidationError
from repro.graph.digraph import Node
from repro.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["place_rumors", "PLACEMENTS"]


def _members_sorted(communities: CommunityStructure, community_id: int) -> List[Node]:
    return sorted(communities.members(community_id), key=repr)


def _uniform(
    communities: CommunityStructure, community_id: int, count: int, rng: RngStream
) -> List[Node]:
    """The paper's protocol: uniform draw from the community."""
    return rng.sample(_members_sorted(communities, community_id), count)


def _hubs(
    communities: CommunityStructure, community_id: int, count: int, rng: RngStream
) -> List[Node]:
    """Highest out-degree members — a rumor started by influencers."""
    graph = communities.graph
    members = _members_sorted(communities, community_id)
    members.sort(key=lambda node: (-graph.out_degree(node), repr(node)))
    return members[:count]


def _boundary(
    communities: CommunityStructure, community_id: int, count: int, rng: RngStream
) -> List[Node]:
    """Members with out-edges leaving the community — worst case for
    containment: the rumor starts one hop from the bridge ends. Falls back
    to uniform members when the boundary is smaller than ``count``."""
    graph = communities.graph
    members = _members_sorted(communities, community_id)
    boundary = [
        node
        for node in members
        if any(
            communities.community_of(head) != community_id
            for head in graph.successors(node)
        )
    ]
    rng.fork("order").shuffle(boundary)
    if len(boundary) >= count:
        return boundary[:count]
    rest = [node for node in members if node not in set(boundary)]
    rng.fork("fill").shuffle(rest)
    return boundary + rest[: count - len(boundary)]


def _deep(
    communities: CommunityStructure, community_id: int, count: int, rng: RngStream
) -> List[Node]:
    """Members with no boundary out-edges — the easiest case (rumor must
    travel through the community before escaping). Falls back to uniform
    members when too few interior nodes exist."""
    graph = communities.graph
    members = _members_sorted(communities, community_id)
    interior = [
        node
        for node in members
        if all(
            communities.community_of(head) == community_id
            for head in graph.successors(node)
        )
    ]
    rng.fork("order").shuffle(interior)
    if len(interior) >= count:
        return interior[:count]
    rest = [node for node in members if node not in set(interior)]
    rng.fork("fill").shuffle(rest)
    return interior + rest[: count - len(interior)]


PLACEMENTS = {
    "uniform": _uniform,
    "hubs": _hubs,
    "boundary": _boundary,
    "deep": _deep,
}


def place_rumors(
    communities: CommunityStructure,
    community_id: int,
    count: int,
    strategy: str = "uniform",
    rng: RngStream = None,
) -> List[Node]:
    """Choose ``count`` rumor originators by a named placement strategy.

    Args:
        communities: community cover.
        community_id: the rumor community.
        count: number of originators.
        strategy: one of ``uniform`` (paper protocol), ``hubs``,
            ``boundary``, ``deep``.
        rng: stream (required; strategies are deterministic given it).
    """
    check_positive(count, "count")
    if strategy not in PLACEMENTS:
        known = ", ".join(sorted(PLACEMENTS))
        raise ValidationError(f"unknown placement {strategy!r}; known: {known}")
    if rng is None:
        raise ValidationError("place_rumors requires an RngStream")
    members = communities.members(community_id)
    if count > len(members):
        raise SeedError(
            f"cannot place {count} rumors in a community of {len(members)}"
        )
    return PLACEMENTS[strategy](communities, community_id, count, rng)
