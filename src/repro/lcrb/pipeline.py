"""End-to-end LCRB pipeline helpers.

The paper's experimental flow (Section VI.B): detect communities with
Louvain → choose a rumor community → draw rumor originators inside it →
find bridge ends → select protectors → simulate. These helpers wire that
flow together so examples, the CLI, and the benchmarks share one code
path.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.algorithms.base import SelectionContext
from repro.community.louvain import louvain
from repro.community.structure import CommunityStructure
from repro.errors import SeedError, ValidationError
from repro.graph.digraph import DiGraph, Node
from repro.rng import RngStream
from repro.utils.validation import check_positive

__all__ = [
    "detect_communities",
    "draw_rumor_seeds",
    "build_context",
    "build_multi_community_context",
    "service_from_context",
]


def detect_communities(
    graph: DiGraph, rng: Optional[RngStream] = None
) -> CommunityStructure:
    """Louvain-detect a community cover (the paper's detector, [25])."""
    result = louvain(graph, rng=rng)
    return CommunityStructure(graph, result.membership)


def draw_rumor_seeds(
    communities: CommunityStructure,
    rumor_community: int,
    count: int,
    rng: RngStream,
) -> List[Node]:
    """Draw ``count`` distinct rumor originators from a community.

    The paper sizes ``|R|`` as a percentage of ``|C|`` and averages over
    repeated random draws (Table I's decimals); a forked stream per draw
    index keeps draws independent and reproducible.

    Args:
        communities: the community cover.
        rumor_community: community id to draw from.
        count: number of originators (``>= 1``, ``<= |C|``).
        rng: stream consumed for the draw.
    """
    check_positive(count, "count")
    members = sorted(communities.members(rumor_community), key=repr)
    if count > len(members):
        raise SeedError(
            f"cannot draw {count} rumor seeds from a community of {len(members)}"
        )
    return rng.sample(members, count)


def build_context(
    graph: DiGraph,
    communities: Optional[CommunityStructure] = None,
    rumor_community: Optional[int] = None,
    rumor_seeds: Optional[Iterable[Node]] = None,
    rumor_fraction: float = 0.05,
    rng: Optional[RngStream] = None,
) -> Tuple[SelectionContext, CommunityStructure, int]:
    """Resolve a full LCRB instance with sensible defaults.

    Any omitted piece is derived: communities via Louvain, the rumor
    community as the largest detected one, rumor seeds as a random
    ``rumor_fraction`` of the community (at least one).

    Returns:
        ``(context, communities, rumor_community_id)``.
    """
    rng = rng or RngStream(name="pipeline")
    if communities is None:
        communities = detect_communities(graph, rng=rng.fork("louvain"))
    elif communities.graph is not graph:
        raise ValidationError("communities are bound to a different graph")
    if rumor_community is None:
        rumor_community = communities.largest_communities(1)[0]
    if rumor_seeds is None:
        size = communities.size(rumor_community)
        count = max(1, int(round(rumor_fraction * size)))
        rumor_seeds = draw_rumor_seeds(
            communities, rumor_community, count, rng.fork("seeds")
        )
    context = SelectionContext(
        graph, communities.members(rumor_community), rumor_seeds
    )
    return context, communities, rumor_community


def service_from_context(context: SelectionContext, **service_kwargs):
    """Promote a resolved LCRB instance into a warm query service.

    The batch pipeline and the serving layer share one id space: the
    service is built on ``context.indexed`` with the rumor community
    mapped to ids, so ``service.query(context.rumor_seed_ids(), ...)``
    answers the same instance the selectors solve — and stays warm for
    follow-up queries and edge updates (see ``docs/serving.md``).

    Args:
        context: the resolved instance.
        **service_kwargs: forwarded to
            :class:`~repro.serve.RumorBlockingService` (``semantics``,
            ``steps``, ``seed``, ``initial_worlds``, ``executor``, ...).

    Returns:
        ``(service, seed_ids)`` — the service and the instance's rumor
        seeds as ids, ready to pass to ``service.query``.
    """
    from repro.serve import RumorBlockingService

    indexed = context.indexed
    community_ids = sorted(indexed.indices(context.rumor_community))
    service = RumorBlockingService(indexed, community_ids, **service_kwargs)
    return service, context.rumor_seed_ids()


def build_multi_community_context(
    graph: DiGraph,
    communities: CommunityStructure,
    rumor_seeds: Iterable[Node],
) -> SelectionContext:
    """Extension: rumors originating in *several* communities at once.

    Definition 2 fixes a single rumor community; real incidents (the
    paper's oil-price rumor circulated network-wide within hours) may
    surface in several communities simultaneously. The natural
    generalisation treats the union of the seed-hosting communities as the
    containment zone: bridge ends are nodes *outside every* rumor
    community with a direct in-neighbor inside one, and all algorithms
    work unchanged on the resulting context.

    Args:
        graph: the social network.
        communities: the community cover.
        rumor_seeds: originators; their communities are inferred.

    Returns:
        A :class:`SelectionContext` whose ``rumor_community`` is the union
        of all seed-hosting communities.
    """
    seeds = tuple(dict.fromkeys(rumor_seeds))
    if not seeds:
        raise SeedError("rumor seed set must not be empty")
    zone = set()
    for seed in seeds:
        zone |= communities.members(communities.community_of(seed))
    return SelectionContext(graph, zone, seeds)
