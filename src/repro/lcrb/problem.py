"""LCRB problem objects (Definitions 2 and 3).

An :class:`LCRBProblem` captures a full instance — network, community
cover, rumor community, rumor originators, protection level α — validates
it, and exposes the derived :class:`~repro.algorithms.base.SelectionContext`
that the algorithms consume. The two concrete variants fix the model and
α regime:

* :class:`LCRBPProblem` — OPOAO, ``0 < α < 1``; solved by
  :class:`~repro.algorithms.greedy.GreedySelector` (or CELF) with the
  (1 - 1/e) guarantee of Theorem 1.
* :class:`LCRBDProblem` — DOAM, ``α = 1``; solved by
  :class:`~repro.algorithms.scbg.SCBGSelector` with the O(ln n) guarantee
  of Theorem 2.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.algorithms.base import SelectionContext
from repro.community.structure import CommunityStructure
from repro.errors import SeedError, ValidationError
from repro.graph.digraph import DiGraph, Node
from repro.utils.validation import check_fraction

__all__ = ["LCRBProblem", "LCRBPProblem", "LCRBDProblem"]


class LCRBProblem:
    """A Least Cost Rumor Blocking instance (Definition 2).

    Args:
        graph: the social network ``G(V, E, C)``'s graph part.
        communities: the disjoint cover ``C``.
        rumor_community: id of the community the rumor originates in.
        rumor_seeds: originators ``S_R ⊆ V(C_k)``.
        alpha: required protected fraction of bridge ends, in ``[0, 1]``.
    """

    #: display name of the variant.
    variant: str = "LCRB"

    def __init__(
        self,
        graph: DiGraph,
        communities: CommunityStructure,
        rumor_community: int,
        rumor_seeds: Iterable[Node],
        alpha: float = 1.0,
    ) -> None:
        if communities.graph is not graph:
            raise ValidationError(
                "communities must be bound to the same graph instance"
            )
        self.graph = graph
        self.communities = communities
        self.rumor_community = rumor_community
        members = communities.members(rumor_community)  # validates the id
        self.rumor_seeds: Tuple[Node, ...] = tuple(dict.fromkeys(rumor_seeds))
        if not self.rumor_seeds:
            raise SeedError("rumor seed set must not be empty")
        outside = [s for s in self.rumor_seeds if s not in members]
        if outside:
            raise SeedError(
                f"rumor seed(s) {outside[:5]!r} are outside community "
                f"{rumor_community} (Definition 2: S_R ⊆ V(C_k))"
            )
        self.alpha = self._check_alpha(alpha)
        self._context: Optional[SelectionContext] = None

    def _check_alpha(self, alpha: float) -> float:
        return check_fraction(alpha, "alpha")

    @property
    def context(self) -> SelectionContext:
        """The resolved selection context (bridge ends computed lazily)."""
        if self._context is None:
            self._context = SelectionContext(
                self.graph,
                self.communities.members(self.rumor_community),
                self.rumor_seeds,
            )
        return self._context

    @property
    def bridge_ends(self):
        """The bridge end set ``B``."""
        return self.context.bridge_ends

    def protection_target(self) -> int:
        """Number of bridge ends that must end up protected: ``⌈α |B|⌉``."""
        import math

        return math.ceil(self.alpha * len(self.bridge_ends))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(community={self.rumor_community}, "
            f"|S_R|={len(self.rumor_seeds)}, alpha={self.alpha})"
        )


class LCRBPProblem(LCRBProblem):
    """LCRB-P: protect an α ∈ (0, 1) fraction of bridge ends under OPOAO."""

    variant = "LCRB-P"

    def _check_alpha(self, alpha: float) -> float:
        return check_fraction(alpha, "alpha", exclusive=True)


class LCRBDProblem(LCRBProblem):
    """LCRB-D: protect **all** bridge ends under DOAM (α = 1)."""

    variant = "LCRB-D"

    def __init__(
        self,
        graph: DiGraph,
        communities: CommunityStructure,
        rumor_community: int,
        rumor_seeds: Iterable[Node],
    ) -> None:
        super().__init__(graph, communities, rumor_community, rumor_seeds, alpha=1.0)

    def _check_alpha(self, alpha: float) -> float:
        if alpha != 1.0:
            raise ValidationError("LCRB-D fixes alpha = 1 (Definition 3)")
        return 1.0
