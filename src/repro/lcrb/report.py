"""Human-readable diagnostics for an LCRB instance.

Before committing a protector budget, an operator wants to see the shape
of the problem: how leaky is the rumor community, how soon does the rumor
hit each bridge end, how big are the backward trees SCBG will mine. The
instance report gathers those numbers; the CLI's ``stats`` command and the
examples print it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.algorithms.base import SelectionContext
from repro.bridge.bbst import build_all_bbsts
from repro.community.metrics import conductance
from repro.community.structure import CommunityStructure
from repro.graph.metrics import summarize
from repro.utils.tables import format_table

__all__ = [
    "InstanceReport",
    "build_instance_report",
    "render_instance_report",
    "render_cover_assessment",
]


class InstanceReport:
    """Structured diagnostics of one LCRB instance.

    Attributes:
        graph_summary: headline graph statistics.
        community_size / rumor_seeds / bridge_ends: instance sizes.
        boundary_edges: directed edges leaving the rumor community.
        internal_fraction: fraction of the community's out-edges staying
            internal ("dense inside, sparse across").
        community_conductance: directed conductance of the community.
        arrival_histogram: ``t_R`` value -> number of bridge ends at that
            rumor arrival time.
        bbst_sizes: per-bridge-end backward-tree sizes (candidate supply).
    """

    __slots__ = (
        "graph_summary",
        "community_size",
        "rumor_seeds",
        "bridge_ends",
        "boundary_edges",
        "internal_fraction",
        "community_conductance",
        "arrival_histogram",
        "bbst_sizes",
    )

    def __init__(self) -> None:
        self.graph_summary = None
        self.community_size = 0
        self.rumor_seeds = 0
        self.bridge_ends = 0
        self.boundary_edges = 0
        self.internal_fraction = 0.0
        self.community_conductance = 0.0
        self.arrival_histogram: Dict[int, int] = {}
        self.bbst_sizes: List[int] = []

    def as_dict(self) -> dict:
        """JSON-friendly form."""
        return {
            "graph": self.graph_summary.as_dict() if self.graph_summary else None,
            "community_size": self.community_size,
            "rumor_seeds": self.rumor_seeds,
            "bridge_ends": self.bridge_ends,
            "boundary_edges": self.boundary_edges,
            "internal_fraction": self.internal_fraction,
            "community_conductance": self.community_conductance,
            "arrival_histogram": dict(self.arrival_histogram),
            "bbst_sizes": list(self.bbst_sizes),
        }


def build_instance_report(
    context: SelectionContext,
    communities: Optional[CommunityStructure] = None,
) -> InstanceReport:
    """Compute diagnostics for an instance.

    Args:
        context: the LCRB instance.
        communities: optional full cover; supplies the internal-fraction
            statistic (computed from the context's community set
            otherwise).
    """
    report = InstanceReport()
    graph = context.graph
    report.graph_summary = summarize(graph)
    report.community_size = len(context.rumor_community)
    report.rumor_seeds = len(context.rumor_seeds)
    report.bridge_ends = len(context.bridge_ends)

    community = context.rumor_community
    boundary = 0
    internal = 0
    total_out = 0
    for tail in community:
        for head in graph.successors(tail):
            total_out += 1
            if head in community:
                internal += 1
            else:
                boundary += 1
    report.boundary_edges = boundary
    report.internal_fraction = internal / total_out if total_out else 0.0
    report.community_conductance = conductance(graph, community)

    arrival = context.rumor_arrival
    for end in context.bridge_ends:
        t = arrival[end]
        report.arrival_histogram[t] = report.arrival_histogram.get(t, 0) + 1

    if context.bridge_ends:
        trees = build_all_bbsts(
            graph,
            sorted(context.bridge_ends, key=repr),
            context.rumor_seeds,
            rumor_arrival=arrival,
        )
        report.bbst_sizes = sorted(len(tree) for tree in trees)
    return report


def render_instance_report(report: InstanceReport) -> str:
    """Plain-text rendering of an :class:`InstanceReport`."""
    lines = [str(report.graph_summary)]
    lines.append(
        f"rumor community: |C|={report.community_size} |S_R|={report.rumor_seeds} "
        f"|B|={report.bridge_ends} boundary_edges={report.boundary_edges}"
    )
    lines.append(
        f"community cohesion: internal_fraction={report.internal_fraction:.2f} "
        f"conductance={report.community_conductance:.3f}"
    )
    if report.arrival_histogram:
        rows = [
            [t, count]
            for t, count in sorted(report.arrival_histogram.items())
        ]
        lines.append(
            format_table(
                ["t_R", "bridge ends"], rows, title="rumor arrival at bridge ends"
            )
        )
    if report.bbst_sizes:
        sizes = report.bbst_sizes
        lines.append(
            "BBST sizes (candidate supply): "
            f"min={sizes[0]} median={sizes[len(sizes) // 2]} max={sizes[-1]}"
        )
    return "\n".join(lines)


def render_cover_assessment(context: SelectionContext, protectors) -> str:
    """Fragility assessment of a proposed protector set under DOAM.

    Uses the closed-form arrival analysis to report, per bridge end, the
    protection slack (rumor arrival minus protector arrival): slack 0
    means the cover relies on a P-priority tie; negative slack means the
    bridge end falls.
    """
    import math

    from repro.diffusion.arrival import protection_slack

    targets = sorted(context.bridge_ends, key=repr)
    if not targets:
        return "no bridge ends: nothing to assess"
    slack = protection_slack(
        context.graph, context.rumor_seeds, protectors, targets
    )
    falling = [t for t in targets if slack[t] < 0]
    ties = [t for t in targets if slack[t] == 0]
    comfortable = [t for t in targets if slack[t] > 0]
    finite = [s for s in slack.values() if not math.isinf(s) and s >= 0]
    lines = [
        f"cover assessment for |P|={len(list(protectors))}: "
        f"{len(comfortable)} safe with margin, {len(ties)} on a priority tie, "
        f"{len(falling)} falling"
    ]
    if finite:
        lines.append(
            f"slack among protected ends: min={min(finite):.0f} "
            f"max={max(finite):.0f} steps"
        )
    if falling:
        preview = ", ".join(str(t) for t in falling[:5])
        lines.append(f"falling bridge ends: {preview}" + (" ..." if len(falling) > 5 else ""))
    return "\n".join(lines)
