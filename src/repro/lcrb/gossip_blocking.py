"""Rumor blocking under gossip dynamics: the protector-selection study.

The paper scores protector sets on batched cascade models (OPOAO/DOAM);
this scenario re-scores them on the message-passing gossip workload of
:mod:`repro.gossip`. For each strategy it selects a protector set on the
LCRB instance, injects it at the configured delay, and fans gossip
replicas out through :class:`~repro.gossip.runner.GossipMonteCarlo` —
producing, per strategy, the *messages-sent versus final-infected*
trade-off (gossip's natural cost axis, which the batched models cannot
see) plus the per-round infection curve.

The ``none`` baseline (no protectors) anchors both axes: it shows the
unblocked spread and the protocol's organic message cost.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.algorithms.base import ProtectorSelector, SelectionContext
from repro.gossip.config import GossipConfig
from repro.gossip.runner import GossipMonteCarlo
from repro.rng import RngStream
from repro.utils.tables import format_table
from repro.utils.validation import check_positive

__all__ = [
    "GossipBlockingResult",
    "GossipBlockingScenario",
    "GossipStrategyRow",
    "default_gossip_selectors",
]


class GossipStrategyRow(NamedTuple):
    """One strategy's aggregate outcome over all gossip replicas."""

    strategy: str
    protectors: int
    mean_infected: float
    mean_protected: float
    max_infected: int
    messages_total: int
    mean_messages: float
    events: int
    #: mean cumulative infected count at round 0..max_rounds.
    infected_series: Tuple[float, ...]


class GossipBlockingResult:
    """All strategy rows of one study, with table/JSON renderings."""

    def __init__(self, rows: List[GossipStrategyRow], replicas: int) -> None:
        self.rows = list(rows)
        self.replicas = int(replicas)

    def row(self, strategy: str) -> GossipStrategyRow:
        """The named strategy's row (KeyError when absent)."""
        for row in self.rows:
            if row.strategy == strategy:
                return row
        raise KeyError(strategy)

    def to_table(self) -> str:
        """The study as an aligned text table (CLI output)."""
        headers = [
            "strategy",
            "protectors",
            "mean infected",
            "mean protected",
            "messages/replica",
            "messages total",
        ]
        body = [
            [
                row.strategy,
                str(row.protectors),
                f"{row.mean_infected:.2f}",
                f"{row.mean_protected:.2f}",
                f"{row.mean_messages:.1f}",
                str(row.messages_total),
            ]
            for row in self.rows
        ]
        return format_table(
            headers, body, title=f"gossip blocking ({self.replicas} replicas)"
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict report (``--metrics-out`` / benchmark JSON)."""
        return {
            "replicas": self.replicas,
            "strategies": [
                {
                    "strategy": row.strategy,
                    "protectors": row.protectors,
                    "mean_infected": row.mean_infected,
                    "mean_protected": row.mean_protected,
                    "max_infected": row.max_infected,
                    "messages_total": row.messages_total,
                    "mean_messages": row.mean_messages,
                    "events": row.events,
                    "infected_series": list(row.infected_series),
                }
                for row in self.rows
            ],
        }

    def __repr__(self) -> str:
        names = ", ".join(row.strategy for row in self.rows)
        return f"GossipBlockingResult({names}; replicas={self.replicas})"


def default_gossip_selectors(
    rng: RngStream,
) -> Dict[str, Optional[ProtectorSelector]]:
    """The study's standard panel: none, random, maxdegree, ris-greedy.

    Selector randomness forks off ``rng`` by strategy name, so the panel
    is deterministic given the stream and independent of dict order.
    """
    from repro.algorithms.heuristics import MaxDegreeSelector, RandomSelector
    from repro.algorithms.ris_greedy import RISGreedySelector

    return {
        "none": None,
        "random": RandomSelector(rng=rng.fork("selector", "random")),
        "maxdegree": MaxDegreeSelector(),
        "ris-greedy": RISGreedySelector(rng=rng.fork("selector", "ris-greedy")),
    }


class GossipBlockingScenario:
    """Compare protector-selection strategies under gossip dynamics.

    Args:
        config: the gossip protocol instance (protector injection delay
            included).
        runs: gossip replicas per strategy.
        budget: protector-set size each selector is asked for.
        processes / share / chunk_timeout / chunk_retries / checkpoint:
            forwarded to :class:`~repro.gossip.runner.GossipMonteCarlo`
            (checkpoints are per-strategy: the strategy's protector set
            is part of the run-key).
        executor: a shared :class:`~repro.exec.pool.ParallelExecutor`
            every strategy panel submits to; ``None`` builds one
            scenario-owned executor so the panels still share a single
            warm pool instead of one per strategy.
    """

    def __init__(
        self,
        config: GossipConfig,
        runs: int = 50,
        budget: int = 2,
        processes: Optional[int] = None,
        share: str = "auto",
        chunk_timeout: Optional[float] = None,
        chunk_retries: Optional[int] = None,
        checkpoint=None,
        executor=None,
    ) -> None:
        self.config = config
        self.runs = int(check_positive(runs, "runs"))
        self.budget = int(check_positive(budget, "budget"))
        self.processes = processes
        self.share = share
        self.chunk_timeout = chunk_timeout
        self.chunk_retries = chunk_retries
        self.checkpoint = checkpoint
        self._executor = executor
        self._runner: Optional[GossipMonteCarlo] = None

    def run(
        self,
        context: SelectionContext,
        rng: RngStream,
        selectors: Optional[Dict[str, Optional[ProtectorSelector]]] = None,
    ) -> GossipBlockingResult:
        """Run every strategy on ``context`` and collect its row.

        Each strategy's replica batch runs on ``rng.fork("gossip", name)``
        — strategies are independent and reordering the panel does not
        change any row.
        """
        if selectors is None:
            selectors = default_gossip_selectors(rng)
        indexed = context.indexed
        rumor_ids = context.rumor_seed_ids()
        rows: List[GossipStrategyRow] = []
        for name, selector in selectors.items():
            if selector is None:
                protector_ids: List[int] = []
            else:
                chosen = selector.select(context, self.budget)
                protector_ids = sorted(indexed.indices(chosen))
            if self._runner is None:
                # One runner (and so one executor/pool) serves every
                # strategy panel; replica streams still fork per
                # strategy, so rows are unaffected by the sharing.
                self._runner = GossipMonteCarlo(
                    self.config,
                    runs=self.runs,
                    processes=self.processes,
                    share=self.share,
                    chunk_timeout=self.chunk_timeout,
                    chunk_retries=self.chunk_retries,
                    checkpoint=self.checkpoint,
                    executor=self._executor,
                )
            runner = self._runner
            aggregate = runner.run(
                indexed,
                rumor_ids,
                protector_ids,
                rng=rng.fork("gossip", name),
            )
            rows.append(
                GossipStrategyRow(
                    strategy=name,
                    protectors=len(protector_ids),
                    mean_infected=aggregate.mean_infected,
                    mean_protected=aggregate.mean_protected,
                    max_infected=aggregate.max_infected,
                    messages_total=aggregate.messages_total,
                    mean_messages=aggregate.mean_messages,
                    events=aggregate.events,
                    infected_series=tuple(aggregate.mean_series()),
                )
            )
        return GossipBlockingResult(rows, self.runs)

    def __repr__(self) -> str:
        return (
            f"GossipBlockingScenario({self.config.protocol}, runs={self.runs}, "
            f"budget={self.budget})"
        )
