"""Protector-set evaluation: the quantities the paper's figures report.

Given an instance and a concrete protector set, :func:`evaluate_protectors`
runs the Monte-Carlo simulator and collects:

* the mean cumulative **infected-per-hop** series (Fig. 4-9's y-axis),
* final infected / protected counts,
* bridge-end outcomes: mean fraction infected, protected, untouched —
  the protection level of Definition 2.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.algorithms.base import SelectionContext
from repro.diffusion.base import (
    DEFAULT_MAX_HOPS,
    INFECTED,
    PROTECTED,
    DiffusionModel,
    DiffusionOutcome,
    SeedSets,
)
from repro.diffusion.simulation import MonteCarloSimulator, SimulationAggregate
from repro.errors import SeedError
from repro.graph.digraph import Node
from repro.rng import RngStream
from repro.utils.stats import RunningStats

__all__ = [
    "EvaluationResult",
    "evaluate_protectors",
    "compare_evaluations",
    "resolve_seed_labels",
]


def resolve_seed_labels(indexed, labels: Iterable[Node], role: str) -> List[int]:
    """Translate seed labels to node ids, validating the whole set first.

    Every unknown label is reported at once — a typo'd seed file should
    produce one actionable :class:`~repro.errors.SeedError` naming all
    offenders, not a :class:`~repro.errors.NodeNotFoundError` for just
    the first (the pre-fix behaviour). Duplicates collapse, preserving
    first-seen order.
    """
    deduped = list(dict.fromkeys(labels))
    unknown = [label for label in deduped if not indexed.has_label(label)]
    if unknown:
        shown = ", ".join(repr(label) for label in unknown)
        raise SeedError(
            f"unknown {role} seed label(s): {shown} "
            f"({len(unknown)} of {len(deduped)} not in the graph)"
        )
    return indexed.indices(deduped)


class EvaluationResult:
    """Aggregated outcome of evaluating one protector set.

    Attributes:
        aggregate: the raw :class:`SimulationAggregate`.
        bridge_infected: stats of the per-run count of infected bridge ends.
        bridge_protected: stats of the per-run count of actively protected
            bridge ends.
        bridge_untouched: stats of bridge ends neither cascade reached.
        bridge_total: number of bridge ends in the instance.
    """

    __slots__ = (
        "aggregate",
        "bridge_infected",
        "bridge_protected",
        "bridge_untouched",
        "bridge_total",
        "final_infected_samples",
    )

    def __init__(self, aggregate: SimulationAggregate, bridge_total: int) -> None:
        self.aggregate = aggregate
        self.bridge_total = bridge_total
        self.bridge_infected = RunningStats()
        self.bridge_protected = RunningStats()
        self.bridge_untouched = RunningStats()
        #: per-replica final infected counts (for significance testing).
        self.final_infected_samples: List[int] = []

    @property
    def infected_per_hop(self) -> List[float]:
        """Mean cumulative infected nodes per hop (the figures' series)."""
        return self.aggregate.infected_per_hop

    @property
    def final_infected_mean(self) -> float:
        """Mean final infected node count."""
        return self.aggregate.final_infected.mean

    @property
    def protected_bridge_fraction(self) -> float:
        """Mean fraction of bridge ends the rumor did **not** take.

        Definition 2's protection level counts a bridge end as protected
        when it is not infected at the end of diffusion — whether actively
        protected or never reached.
        """
        if self.bridge_total == 0:
            return 1.0
        return 1.0 - self.bridge_infected.mean / self.bridge_total

    def __repr__(self) -> str:
        return (
            f"EvaluationResult(final_infected={self.final_infected_mean:.1f}, "
            f"protected_bridge_fraction={self.protected_bridge_fraction:.3f})"
        )


def evaluate_protectors(
    context: SelectionContext,
    protectors: Iterable[Node],
    model: DiffusionModel,
    runs: int = 200,
    max_hops: int = DEFAULT_MAX_HOPS,
    rng: Optional[RngStream] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    checkpoint=None,
    chunk_timeout: Optional[float] = None,
    chunk_retries: Optional[int] = None,
    executor=None,
) -> EvaluationResult:
    """Simulate an instance with a given protector set and aggregate.

    Args:
        context: the LCRB instance.
        protectors: protector originators (labels); protectors that
            coincide with rumor seeds raise, mirroring the disjoint-seeds
            requirement of Section III.
        model: diffusion model (OPOAO/DOAM/IC/LT).
        runs: Monte-Carlo replicas (deterministic models run once).
        max_hops: horizon (paper: 31 for OPOAO).
        rng: base stream (required for stochastic models).
        backend: optional kernel backend name for batched simulation
            (see :class:`~repro.diffusion.simulation.MonteCarloSimulator`).
        workers: worker request for process-parallel replicas (``None``/
            ``1`` serial, ``0`` one per CPU); results are bit-identical
            to the serial per-replica path. Ignored with ``backend``
            (the batched kernel already races all replicas at once).
        checkpoint: a path or :class:`~repro.exec.checkpoint.\
            CheckpointStore` for the parallel path's replica batches
            (see :class:`~repro.diffusion.parallel.\
ParallelMonteCarloSimulator`); ignored on the serial/backend paths.
        chunk_timeout: per-chunk pool deadline in seconds for the
            parallel path (see ``docs/parallel.md``).
        chunk_retries: deterministic resubmission budget per failed
            chunk (``None`` uses the executor default).
        executor: a shared :class:`~repro.exec.pool.ParallelExecutor`
            for the parallel path — e.g. the one the CLI already warmed
            during selection — so evaluation reuses its pool and graph
            publication instead of spinning up new ones.
    """
    indexed = context.indexed
    protector_ids = resolve_seed_labels(indexed, protectors, "protector")
    seeds = SeedSets(rumors=context.rumor_seed_ids(), protectors=protector_ids)
    end_ids = context.bridge_end_ids()

    if executor is not None and workers is None:
        workers = executor.workers
    if workers is not None and backend is None and model.stochastic:
        from repro.exec.pool import resolve_workers

        if resolve_workers(workers, runs) > 1:
            return _evaluate_parallel(
                indexed, seeds, end_ids, model, runs, max_hops, rng, workers,
                checkpoint=checkpoint,
                chunk_timeout=chunk_timeout,
                chunk_retries=chunk_retries,
                executor=executor,
            )

    simulator = MonteCarloSimulator(
        model, runs=runs, max_hops=max_hops, backend=backend
    )
    result = EvaluationResult(
        SimulationAggregate(max_hops), bridge_total=len(end_ids)
    )

    def collect(outcome: DiffusionOutcome) -> None:
        result.final_infected_samples.append(outcome.infected_count)
        infected = protected = untouched = 0
        for end in end_ids:
            state = outcome.states[end]
            if state == INFECTED:
                infected += 1
            elif state >= PROTECTED:  # any positive campaign
                protected += 1
            else:
                untouched += 1
        result.bridge_infected.add(infected)
        result.bridge_protected.add(protected)
        result.bridge_untouched.add(untouched)

    result.aggregate = simulator.simulate(indexed, seeds, rng=rng, on_outcome=collect)
    return result


def _evaluate_parallel(
    indexed, seeds, end_ids, model, runs, max_hops, rng, workers,
    checkpoint=None, chunk_timeout=None, chunk_retries=None, executor=None,
) -> EvaluationResult:
    """Process-parallel evaluation, bit-identical to the serial path.

    Workers ship per-replica :class:`~repro.diffusion.parallel.\
ReplicaRecord` data; folding it here in replica order feeds the exact
    per-replica values the serial ``collect`` callback would have seen.
    """
    from repro.diffusion.parallel import ParallelMonteCarloSimulator

    simulator = ParallelMonteCarloSimulator(
        model,
        runs=runs,
        max_hops=max_hops,
        processes=None if workers == 0 else workers,
        chunk_timeout=chunk_timeout,
        chunk_retries=chunk_retries,
        checkpoint=checkpoint,
        executor=executor,
    )
    aggregate, records = simulator.simulate_detailed(
        indexed, seeds, rng=rng, end_ids=end_ids
    )
    result = EvaluationResult(aggregate, bridge_total=len(end_ids))
    for record in records:
        result.final_infected_samples.append(record.final_infected)
        infected, protected, untouched = record.end_counts
        result.bridge_infected.add(infected)
        result.bridge_protected.add(protected)
        result.bridge_untouched.add(untouched)
    return result


def compare_evaluations(
    left: EvaluationResult,
    right: EvaluationResult,
    rng: RngStream,
    iterations: int = 2000,
) -> dict:
    """Is ``left``'s final infected count significantly below ``right``'s?

    Bootstraps the difference of per-replica final infected means. The
    figure benchmarks' ordinal claims ("Greedy ends below Proximity") can
    be checked against sampling noise with this.

    Returns:
        dict with ``observed_diff`` (left - right; negative = left
        better), ``ci`` (bootstrap interval), ``p_left_better``, and
        ``resolved`` (the interval excludes zero).
    """
    from repro.utils.stats import bootstrap_mean_diff

    observed, interval, p_left_better = bootstrap_mean_diff(
        left.final_infected_samples,
        right.final_infected_samples,
        rng,
        iterations=iterations,
    )
    lo, hi = interval
    return {
        "observed_diff": observed,
        "ci": interval,
        "p_left_better": p_left_better,
        "resolved": lo > 0 or hi < 0,
    }
