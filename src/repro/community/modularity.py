"""Newman modularity of a partition.

Modularity is the objective Louvain (the paper's detector, reference [25])
optimises. Following the original Louvain paper we compute it on the
*symmetrised* weighted graph: each directed edge contributes its weight to
the undirected multigraph, mutual edges sum.

Q = (1 / 2m) * sum_ij [ A_ij - k_i k_j / (2m) ] δ(c_i, c_j)

implemented, as usual, community-by-community:

Q = sum_c [ Σ_in(c) / (2m) - (Σ_tot(c) / (2m))² ]

where Σ_in(c) counts twice the internal undirected weight (self-loops count
once... see code) and Σ_tot(c) the total degree mass of c.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import CommunityError
from repro.graph.digraph import DiGraph, Node

__all__ = ["modularity", "modularity_from_weights"]


def modularity(graph: DiGraph, membership: Mapping[Node, int]) -> float:
    """Modularity of ``membership`` on the symmetrised view of ``graph``.

    Args:
        graph: directed graph; symmetrised internally.
        membership: node -> community id, covering every node.

    Returns:
        Q in [-0.5, 1.0]; 0.0 for an empty/edgeless graph.
    """
    for node in graph.nodes():
        if node not in membership:
            raise CommunityError(f"node {node!r} lacks a community id")
    return modularity_from_weights(graph.to_undirected_weights(), membership)


def modularity_from_weights(
    adjacency: Mapping[Node, Mapping[Node, float]],
    membership: Mapping[Node, int],
) -> float:
    """Modularity over a symmetric weighted adjacency.

    ``adjacency`` must be symmetric (``adjacency[u][v] == adjacency[v][u]``)
    with self-loop weight stored once at ``adjacency[u][u]``.
    """
    two_m = 0.0
    for node, neighbors in adjacency.items():
        for neighbor, weight in neighbors.items():
            if neighbor == node:
                two_m += 2.0 * weight  # self-loop contributes its weight to both "ends"
            else:
                two_m += weight
    if two_m == 0.0:
        return 0.0

    internal: Dict[int, float] = {}
    total: Dict[int, float] = {}
    for node, neighbors in adjacency.items():
        community = membership[node]
        node_degree = 0.0
        for neighbor, weight in neighbors.items():
            if neighbor == node:
                node_degree += 2.0 * weight
                internal[community] = internal.get(community, 0.0) + 2.0 * weight
                continue
            node_degree += weight
            if membership[neighbor] == community:
                internal[community] = internal.get(community, 0.0) + weight
        total[community] = total.get(community, 0.0) + node_degree

    quality = 0.0
    for community, degree_mass in total.items():
        quality += internal.get(community, 0.0) / two_m
        quality -= (degree_mass / two_m) ** 2
    return quality
