"""Girvan-Newman community detection (edge-betweenness removal).

A third detector — classical, O(E²·V)-ish, so only practical on small
graphs, but valuable as an independent cross-check of Louvain on toy and
test instances (the comparative-analysis context of the paper's reference
[32]). Repeatedly removes the highest-betweenness edge and keeps the weak-
component partition with the best modularity.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.community.modularity import modularity
from repro.graph.betweenness import edge_betweenness
from repro.graph.components import weakly_connected_components
from repro.graph.digraph import DiGraph, Node
from repro.utils.validation import check_positive

__all__ = ["girvan_newman"]


def _partition_of_components(graph: DiGraph) -> Dict[Node, int]:
    membership: Dict[Node, int] = {}
    for community_id, component in enumerate(weakly_connected_components(graph)):
        for node in component:
            membership[node] = community_id
    return membership


def girvan_newman(
    graph: DiGraph,
    max_communities: Optional[int] = None,
) -> Dict[Node, int]:
    """Detect communities by iterative highest-betweenness edge removal.

    Args:
        graph: input digraph (a working copy is mutated internally).
        max_communities: stop splitting once this many weak components
            exist; ``None`` = run until no edges remain and return the
            best-modularity partition seen.

    Returns:
        node -> community id of the best-modularity partition encountered.
    """
    if max_communities is not None:
        check_positive(max_communities, "max_communities")
    if graph.node_count == 0:
        return {}

    working = graph.copy()
    best_membership = _partition_of_components(working)
    best_quality = modularity(graph, best_membership)

    while working.edge_count > 0:
        scores = edge_betweenness(working, normalized=False)
        top_edge = max(scores.items(), key=lambda kv: (kv[1], repr(kv[0])))[0]
        working.remove_edge(*top_edge)
        membership = _partition_of_components(working)
        quality = modularity(graph, membership)
        if quality > best_quality:
            best_quality = quality
            best_membership = membership
        communities = len(set(membership.values()))
        if max_communities is not None and communities >= max_communities:
            best_membership = membership
            break

    # Dense 0-based ids in first-seen order.
    dense: Dict[int, int] = {}
    result: Dict[Node, int] = {}
    for node in graph.nodes():
        community_id = best_membership[node]
        if community_id not in dense:
            dense[community_id] = len(dense)
        result[node] = dense[community_id]
    return result
