"""The community cover of a social network (paper Definition 1).

A :class:`CommunityStructure` is a validated partition of a graph's nodes
into disjoint communities ``C = {C_1, ..., C_k}`` with
``∪ V(C_r) = V``. On top of the raw partition it answers the queries the
LCRB pipeline needs:

* which community a node belongs to,
* the *R-neighbor communities* of a rumor community (communities receiving
  at least one direct edge from it — Section I),
* community sizes and boundary edges.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Set, Tuple

from repro.errors import CommunityError, NodeNotFoundError
from repro.graph.digraph import DiGraph, Node

__all__ = ["CommunityStructure"]


class CommunityStructure:
    """A disjoint community cover bound to a graph.

    Instances are immutable once constructed and validated; detection
    algorithms (:func:`repro.community.louvain.louvain`) return the raw
    membership mapping, which this class freezes and checks.

    Example:
        >>> g = DiGraph.from_edges([(0, 1), (1, 0), (2, 3), (1, 2)])
        >>> cs = CommunityStructure(g, {0: 0, 1: 0, 2: 1, 3: 1})
        >>> cs.community_of(2)
        1
        >>> sorted(cs.members(0))
        [0, 1]
    """

    __slots__ = ("graph", "_membership", "_members")

    def __init__(self, graph: DiGraph, membership: Mapping[Node, int]) -> None:
        """Bind and validate a membership mapping against ``graph``.

        Raises:
            CommunityError: if the mapping does not cover exactly the
                graph's node set or contains non-integer community ids.
        """
        self.graph = graph
        missing = [node for node in graph.nodes() if node not in membership]
        if missing:
            raise CommunityError(
                f"{len(missing)} node(s) lack a community (e.g. {missing[0]!r})"
            )
        extra = [node for node in membership if node not in graph]
        if extra:
            raise CommunityError(
                f"{len(extra)} membership node(s) not in graph (e.g. {extra[0]!r})"
            )
        members: Dict[int, Set[Node]] = {}
        frozen: Dict[Node, int] = {}
        for node, community_id in membership.items():
            if isinstance(community_id, bool) or not isinstance(community_id, int):
                raise CommunityError(
                    f"community id must be int, got {community_id!r} for {node!r}"
                )
            frozen[node] = community_id
            members.setdefault(community_id, set()).add(node)
        self._membership = frozen
        self._members = {cid: frozenset(nodes) for cid, nodes in members.items()}

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_blocks(cls, graph: DiGraph, blocks: Iterable[Iterable[Node]]) -> "CommunityStructure":
        """Build from explicit node groups (ids assigned by position)."""
        membership: Dict[Node, int] = {}
        for community_id, block in enumerate(blocks):
            for node in block:
                if node in membership:
                    raise CommunityError(f"node {node!r} appears in two communities")
                membership[node] = community_id
        return cls(graph, membership)

    # -- queries -----------------------------------------------------------------

    @property
    def community_ids(self) -> List[int]:
        """Sorted list of community ids."""
        return sorted(self._members)

    @property
    def community_count(self) -> int:
        """Number of communities."""
        return len(self._members)

    def community_of(self, node: Node) -> int:
        """Community id of ``node``."""
        try:
            return self._membership[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def members(self, community_id: int) -> FrozenSet[Node]:
        """Node set of a community."""
        try:
            return self._members[community_id]
        except KeyError:
            raise CommunityError(f"no community with id {community_id!r}") from None

    def size(self, community_id: int) -> int:
        """Size of a community (the paper's |C|)."""
        return len(self.members(community_id))

    def sizes(self) -> Dict[int, int]:
        """Mapping community id -> size."""
        return {cid: len(nodes) for cid, nodes in self._members.items()}

    def membership(self) -> Dict[Node, int]:
        """Copy of the node -> community mapping."""
        return dict(self._membership)

    def same_community(self, u: Node, v: Node) -> bool:
        """True if ``u`` and ``v`` share a community."""
        return self.community_of(u) == self.community_of(v)

    def iter_blocks(self) -> Iterator[Tuple[int, FrozenSet[Node]]]:
        """Iterate ``(community_id, members)`` pairs in id order."""
        for community_id in self.community_ids:
            yield community_id, self._members[community_id]

    # -- LCRB-specific queries ------------------------------------------------------

    def neighbor_communities(self, community_id: int) -> Set[int]:
        """R-neighbor communities: ids receiving a direct edge from ``community_id``.

        Section I: "the neighbor communities of rumor community are called
        R-neighbor communities" — communities that the rumor can step into
        along a single boundary edge.
        """
        block = self.members(community_id)
        neighbors: Set[int] = set()
        for tail in block:
            for head in self.graph.successors(tail):
                head_community = self._membership[head]
                if head_community != community_id:
                    neighbors.add(head_community)
        return neighbors

    def outgoing_boundary(self, community_id: int) -> List[Tuple[Node, Node]]:
        """Directed edges from ``community_id`` into other communities."""
        block = self.members(community_id)
        return [
            (tail, head)
            for tail in block
            for head in self.graph.successors(tail)
            if self._membership[head] != community_id
        ]

    def internal_edge_fraction(self, community_id: int) -> float:
        """Fraction of the community's out-edges that stay internal.

        A sanity metric for "dense inside, sparse across" (Section IV); the
        experiment reports print it for the chosen rumor community.
        """
        block = self.members(community_id)
        total = 0
        internal = 0
        for tail in block:
            for head in self.graph.successors(tail):
                total += 1
                if self._membership[head] == community_id:
                    internal += 1
        return internal / total if total else 0.0

    def largest_communities(self, count: int) -> List[int]:
        """Ids of the ``count`` largest communities (ties by id)."""
        return sorted(self._members, key=lambda cid: (-len(self._members[cid]), cid))[
            :count
        ]

    def __repr__(self) -> str:
        return (
            f"CommunityStructure(communities={self.community_count}, "
            f"nodes={len(self._membership)})"
        )
