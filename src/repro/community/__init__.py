"""Community structure: detection and the paper's community model.

Definition 1 of the paper models a social network as a directed graph
*together with* a disjoint community cover; the LCRB problem then singles
out a *rumor community* and its *R-neighbor communities*. This package
provides:

* :mod:`repro.community.structure` — the validated
  :class:`CommunityStructure` cover and rumor/neighbor community queries.
* :mod:`repro.community.modularity` — Newman modularity over the
  symmetrised weighted graph.
* :mod:`repro.community.louvain` — the Blondel et al. Louvain method, from
  scratch (the paper's detector, reference [25]).
* :mod:`repro.community.label_prop` — label propagation, a second detector
  used for cross-validation in tests.
* :mod:`repro.community.metrics` — partition-quality metrics (NMI, purity,
  conductance).
"""

from repro.community.girvan_newman import girvan_newman
from repro.community.label_prop import label_propagation
from repro.community.louvain import louvain
from repro.community.modularity import modularity
from repro.community.structure import CommunityStructure

__all__ = [
    "CommunityStructure",
    "modularity",
    "louvain",
    "label_propagation",
    "girvan_newman",
]
