"""Label propagation community detection.

A second, independent detector (Raghavan et al. 2007 style) used to
cross-validate Louvain in the test suite and available as an alternative
backend for the pipeline. Each node repeatedly adopts the label carried by
the (weight-summed) majority of its symmetrised neighbors until labels are
stable; ties are broken by the RNG, so the algorithm is deterministic given
the stream.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.graph.digraph import DiGraph, Node
from repro.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["label_propagation"]


def label_propagation(
    graph: DiGraph,
    rng: Optional[RngStream] = None,
    max_rounds: int = 100,
) -> Dict[Node, int]:
    """Detect communities by synchronous-free (asynchronous) label spreading.

    Args:
        graph: input digraph (symmetrised internally).
        rng: stream controlling visit order and tie-breaks.
        max_rounds: hard cap on sweeps over all nodes.

    Returns:
        node -> dense 0-based community id.
    """
    check_positive(max_rounds, "max_rounds")
    rng = rng or RngStream(name="label-prop")
    adjacency = graph.to_undirected_weights()
    nodes = list(graph.nodes())
    label: Dict[Node, int] = {node: index for index, node in enumerate(nodes)}

    for round_index in range(max_rounds):
        order = list(nodes)
        rng.fork("round", round_index).shuffle(order)
        changed = False
        for node in order:
            neighbors = adjacency[node]
            if not neighbors:
                continue
            tally: Dict[int, float] = {}
            for neighbor, weight in neighbors.items():
                if neighbor == node:
                    continue
                tally[label[neighbor]] = tally.get(label[neighbor], 0.0) + weight
            if not tally:
                continue
            best_weight = max(tally.values())
            winners = sorted(lbl for lbl, w in tally.items() if w == best_weight)
            choice = winners[0] if len(winners) == 1 else rng.choice(winners)
            if choice != label[node]:
                label[node] = choice
                changed = True
        if not changed:
            break

    dense: Dict[int, int] = {}
    membership: Dict[Node, int] = {}
    for node in nodes:
        lbl = label[node]
        if lbl not in dense:
            dense[lbl] = len(dense)
        membership[node] = dense[lbl]
    return membership
