"""Partition-quality metrics.

Used by tests (recovering planted partitions) and by experiment reports
(conductance of the chosen rumor community quantifies "dense inside,
sparse across").
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Set, Tuple

from repro.graph.digraph import DiGraph, Node

__all__ = [
    "normalized_mutual_information",
    "purity",
    "conductance",
    "partition_counts",
    "mixing_parameter",
]


def partition_counts(membership: Mapping[Node, int]) -> Dict[int, int]:
    """Community id -> member count."""
    counts: Dict[int, int] = {}
    for community_id in membership.values():
        counts[community_id] = counts.get(community_id, 0) + 1
    return counts


def _joint_counts(
    left: Mapping[Node, int], right: Mapping[Node, int]
) -> Tuple[Dict[Tuple[int, int], int], Dict[int, int], Dict[int, int], int]:
    if set(left) != set(right):
        raise ValueError("partitions cover different node sets")
    joint: Dict[Tuple[int, int], int] = {}
    left_counts: Dict[int, int] = {}
    right_counts: Dict[int, int] = {}
    for node, left_id in left.items():
        right_id = right[node]
        joint[(left_id, right_id)] = joint.get((left_id, right_id), 0) + 1
        left_counts[left_id] = left_counts.get(left_id, 0) + 1
        right_counts[right_id] = right_counts.get(right_id, 0) + 1
    return joint, left_counts, right_counts, len(left)


def normalized_mutual_information(
    left: Mapping[Node, int], right: Mapping[Node, int]
) -> float:
    """NMI between two partitions of the same node set (in [0, 1]).

    Uses arithmetic-mean normalisation; 1.0 means identical partitions (up
    to relabeling), ~0 means independent. Degenerate single-community /
    all-singleton cases return 1.0 when the partitions are identical and
    0.0 otherwise.
    """
    joint, left_counts, right_counts, n = _joint_counts(left, right)
    if n == 0:
        return 1.0

    def entropy(counts: Dict[int, int]) -> float:
        total = 0.0
        for count in counts.values():
            p = count / n
            total -= p * math.log(p)
        return total

    h_left = entropy(left_counts)
    h_right = entropy(right_counts)
    if h_left == 0.0 and h_right == 0.0:
        return 1.0
    if h_left == 0.0 or h_right == 0.0:
        return 0.0
    mutual = 0.0
    for (left_id, right_id), count in joint.items():
        p_joint = count / n
        p_left = left_counts[left_id] / n
        p_right = right_counts[right_id] / n
        mutual += p_joint * math.log(p_joint / (p_left * p_right))
    return 2.0 * mutual / (h_left + h_right)


def purity(found: Mapping[Node, int], truth: Mapping[Node, int]) -> float:
    """Fraction of nodes in the majority-truth class of their found community."""
    joint, found_counts, _, n = _joint_counts(found, truth)
    if n == 0:
        return 1.0
    best: Dict[int, int] = {}
    for (found_id, _), count in joint.items():
        best[found_id] = max(best.get(found_id, 0), count)
    return sum(best.values()) / n


def mixing_parameter(graph: DiGraph, membership: Mapping[Node, int]) -> float:
    """LFR-style mixing μ: the fraction of edges crossing communities.

    The knob the synthetic generators control and the quantity the
    mixing-ablation benchmark sweeps; 0 = perfectly separated communities,
    1 = no community structure at all.
    """
    if graph.edge_count == 0:
        return 0.0
    crossing = sum(
        1 for tail, head in graph.edges() if membership[tail] != membership[head]
    )
    return crossing / graph.edge_count


def conductance(graph: DiGraph, nodes: Iterable[Node]) -> float:
    """Directed conductance of a node set: cut edges / min(vol(S), vol(V\\S)).

    Volume is the number of directed edges with tail in the set. Low
    conductance = strong community (sparse boundary), the paper's Section
    IV premise.
    """
    inside: Set[Node] = set(nodes)
    cut = 0
    volume_in = 0
    for tail in inside:
        for head in graph.successors(tail):
            volume_in += 1
            if head not in inside:
                cut += 1
    for head in inside:
        for tail in graph.predecessors(head):
            if tail not in inside:
                cut += 1
    volume_out = graph.edge_count - volume_in
    denominator = min(volume_in, volume_out)
    if denominator == 0:
        return 1.0 if cut else 0.0
    return cut / denominator
