"""The Louvain method (Blondel et al. 2008), from scratch.

The paper's experiments obtain the community structure with "a community
detection approach proposed by Blondel et al. [25]" (Section VI.B). This
module implements that algorithm directly:

1. **Local moving** — repeatedly move single nodes to the neighboring
   community with the best modularity gain, until no move improves.
2. **Aggregation** — collapse each community to a super-node (intra-
   community weight becomes a self-loop) and recurse.

The implementation operates on the symmetrised weighted adjacency of the
input digraph, matching :mod:`repro.community.modularity`. It is fully
deterministic given the :class:`~repro.rng.RngStream` (node visiting order
is shuffled per pass, as in the reference implementation).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.graph.digraph import DiGraph, Node
from repro.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["louvain", "LouvainResult"]


class LouvainResult:
    """Outcome of a Louvain run.

    Attributes:
        membership: node -> final community id (ids are dense, 0-based).
        levels: membership after each aggregation level (coarse history).
        passes: number of local-moving passes executed in total.
    """

    __slots__ = ("membership", "levels", "passes")

    def __init__(
        self,
        membership: Dict[Node, int],
        levels: List[Dict[Node, int]],
        passes: int,
    ) -> None:
        self.membership = membership
        self.levels = levels
        self.passes = passes

    def __repr__(self) -> str:
        communities = len(set(self.membership.values()))
        return (
            f"LouvainResult(communities={communities}, "
            f"levels={len(self.levels)}, passes={self.passes})"
        )


def _local_moving(
    adjacency: Mapping[int, Mapping[int, float]],
    rng: RngStream,
    resolution: float,
    min_gain: float,
) -> Dict[int, int]:
    """One level of Louvain local moving over an int-keyed adjacency.

    Returns node -> community (community ids are node ids of exemplars).
    """
    nodes = list(adjacency)
    # Degree mass per node (self-loops count twice) and total 2m.
    degree: Dict[int, float] = {}
    self_loop: Dict[int, float] = {}
    two_m = 0.0
    for node in nodes:
        mass = 0.0
        loop = 0.0
        for neighbor, weight in adjacency[node].items():
            if neighbor == node:
                loop += weight
                mass += 2.0 * weight
            else:
                mass += weight
        degree[node] = mass
        self_loop[node] = loop
        two_m += mass
    if two_m == 0.0:
        return {node: node for node in nodes}

    community: Dict[int, int] = {node: node for node in nodes}
    community_mass: Dict[int, float] = {node: degree[node] for node in nodes}

    improved = True
    while improved:
        improved = False
        order = list(nodes)
        rng.shuffle(order)
        for node in order:
            home = community[node]
            # Weight from `node` to each adjacent community (excluding self-loop).
            links: Dict[int, float] = {}
            for neighbor, weight in adjacency[node].items():
                if neighbor == node:
                    continue
                links[community[neighbor]] = links.get(community[neighbor], 0.0) + weight
            # Detach node from its community.
            community_mass[home] -= degree[node]
            best_community = home
            best_gain = links.get(home, 0.0) - resolution * community_mass[home] * degree[
                node
            ] / two_m
            for candidate, weight in links.items():
                if candidate == home:
                    continue
                gain = weight - resolution * community_mass[candidate] * degree[node] / two_m
                if gain > best_gain + min_gain:
                    best_gain = gain
                    best_community = candidate
            community[node] = best_community
            community_mass[best_community] += degree[node]
            if best_community != home:
                improved = True
    return community


def _aggregate(
    adjacency: Mapping[int, Mapping[int, float]],
    community: Mapping[int, int],
) -> Dict[int, Dict[int, float]]:
    """Collapse communities into super-nodes with summed weights."""
    dense: Dict[int, int] = {}
    for node in adjacency:
        cid = community[node]
        if cid not in dense:
            dense[cid] = len(dense)
    aggregated: Dict[int, Dict[int, float]] = {index: {} for index in dense.values()}
    for node, neighbors in adjacency.items():
        cu = dense[community[node]]
        for neighbor, weight in neighbors.items():
            cv = dense[community[neighbor]]
            if node == neighbor:
                aggregated[cu][cu] = aggregated[cu].get(cu, 0.0) + weight
            elif cu == cv:
                # Both endpoints inside: symmetric adjacency lists the edge
                # twice, so half the summed weight becomes the self-loop.
                aggregated[cu][cu] = aggregated[cu].get(cu, 0.0) + weight / 2.0
            else:
                aggregated[cu][cv] = aggregated[cu].get(cv, 0.0) + weight
    return aggregated


def louvain(
    graph: DiGraph,
    rng: Optional[RngStream] = None,
    resolution: float = 1.0,
    min_gain: float = 1e-12,
    max_levels: int = 32,
) -> LouvainResult:
    """Run Louvain community detection on a directed graph.

    Args:
        graph: input digraph (symmetrised internally).
        rng: random stream controlling visit order; defaults to a fixed
            seed so repeated calls agree.
        resolution: modularity resolution parameter (1.0 = classic).
        min_gain: minimum modularity gain to accept a move (guards against
            float-noise oscillation).
        max_levels: hard cap on aggregation levels.

    Returns:
        :class:`LouvainResult`; ``membership`` has dense 0-based ids.
    """
    check_positive(resolution, "resolution")
    rng = rng or RngStream(name="louvain")

    node_list = list(graph.nodes())
    if not node_list:
        return LouvainResult({}, [], 0)
    position = {node: index for index, node in enumerate(node_list)}
    raw = graph.to_undirected_weights()
    adjacency: Dict[int, Dict[int, float]] = {
        position[node]: {position[nbr]: w for nbr, w in neighbors.items()}
        for node, neighbors in raw.items()
    }

    # node -> current super-node index at the working level.
    assignment: Dict[int, int] = {index: index for index in range(len(node_list))}
    levels: List[Dict[Node, int]] = []
    passes = 0

    for level in range(max_levels):
        community = _local_moving(adjacency, rng.fork("level", level), resolution, min_gain)
        passes += 1
        distinct = len(set(community.values()))
        if distinct == len(adjacency):
            break  # no merge happened; converged
        dense: Dict[int, int] = {}
        for super_node in adjacency:
            cid = community[super_node]
            if cid not in dense:
                dense[cid] = len(dense)
        assignment = {
            node_index: dense[community[assignment[node_index]]]
            for node_index in assignment
        }
        levels.append(
            {node: assignment[position[node]] for node in node_list}
        )
        adjacency = _aggregate(adjacency, community)
        if len(adjacency) == 1:
            break

    final = {node: assignment[position[node]] for node in node_list}
    # Normalise ids to dense 0-based in first-seen order.
    dense_final: Dict[int, int] = {}
    membership: Dict[Node, int] = {}
    for node in node_list:
        cid = final[node]
        if cid not in dense_final:
            dense_final[cid] = len(dense_final)
        membership[node] = dense_final[cid]
    return LouvainResult(membership, levels, passes)
