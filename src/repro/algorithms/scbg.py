"""The Set Cover Based Greedy (SCBG) algorithm — Algorithm 3.

Pipeline, exactly as the paper lays it out:

1. **RFST** (line 3): find the bridge ends ``B`` — already resolved inside
   the :class:`~repro.algorithms.base.SelectionContext`.
2. **BBST** (line 4): for each bridge end ``v`` grow a backward BFS tree
   ``Q_v`` of depth ``t_R(v)``.
3. **Coverage map** (line 5): invert the trees into ``SW_u`` — the bridge
   ends each candidate ``u`` can protect.
4. **Greedy set cover** (line 6, Algorithm 2): select the fewest
   candidates covering all of ``B``.

The result is an O(ln |B|)-approximation of the optimal protector count
for LCRB-D (Theorem 2); Corollary 1 shows that is the best possible ratio
unless P = NP.

``coverage="exact"`` swaps step 3 for the blocking-aware simulation-based
coverage (ablation; see :mod:`repro.bridge.coverage`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.algorithms.base import ProtectorSelector, SelectionContext
from repro.algorithms.setcover import greedy_set_cover
from repro.bridge.bbst import build_all_bbsts
from repro.bridge.coverage import blocking_aware_coverage, coverage_map_from_bbsts
from repro.errors import SelectionError
from repro.graph.digraph import Node

__all__ = ["SCBGSelector"]


class SCBGSelector(ProtectorSelector):
    """Set Cover Based Greedy protector selection for LCRB-D.

    Args:
        coverage: ``"bbst"`` (paper's Algorithm 3, default) or ``"exact"``
            (blocking-aware DOAM simulation per candidate; slower, and
            additionally credits candidates for bridge ends they save by
            *delaying* the rumor — see :mod:`repro.bridge.coverage`).
    """

    name = "SCBG"

    def __init__(self, coverage: str = "bbst") -> None:
        if coverage not in ("bbst", "exact"):
            raise SelectionError(f"coverage must be 'bbst' or 'exact', got {coverage!r}")
        self.coverage = coverage

    def coverage_map(self, context: SelectionContext) -> Dict[Node, FrozenSet[Node]]:
        """The ``SW_u`` map for this context (exposed for ablation benches)."""
        if self.coverage == "bbst":
            bbsts = build_all_bbsts(
                context.graph,
                sorted_nodes(context.bridge_ends),
                context.rumor_seeds,
                rumor_arrival=context.rumor_arrival,
            )
            return coverage_map_from_bbsts(bbsts, context.rumor_seeds)
        candidate_pool = _bbst_candidate_pool(context)
        return blocking_aware_coverage(
            context.graph,
            context.rumor_seeds,
            candidate_pool,
            sorted_nodes(context.bridge_ends),
        )

    def select(
        self, context: SelectionContext, budget: Optional[int] = None
    ) -> List[Node]:
        """Run Algorithm 3. ``budget`` truncates the cover if given.

        SCBG's natural output is its own minimal cover; when the OPOAO
        comparison fixes ``|P| = |R|`` the cover is truncated to the first
        ``budget`` picks (greedy order = marginal-coverage order, so the
        prefix is the best ``budget``-subset the cover contains).
        """
        budget = self._check_budget(budget)
        if not context.bridge_ends:
            return []
        sets = self.coverage_map(context)
        cover = greedy_set_cover(sorted_nodes(context.bridge_ends), sets)
        if budget is not None:
            return cover[:budget]
        return cover

    def __repr__(self) -> str:
        return f"SCBGSelector(coverage={self.coverage!r})"


def sorted_nodes(nodes) -> List[Node]:
    """Deterministic node ordering (sort by repr to allow mixed types)."""
    try:
        return sorted(nodes)
    except TypeError:
        return sorted(nodes, key=repr)


def _bbst_candidate_pool(context: SelectionContext) -> List[Node]:
    """Candidates worth simulating for exact coverage: the BBST union.

    Nodes outside every BBST cannot reach any bridge end in time even
    without blocking, so the BBST union is a sound restriction for the
    exact variant too.
    """
    bbsts = build_all_bbsts(
        context.graph,
        sorted_nodes(context.bridge_ends),
        context.rumor_seeds,
        rumor_arrival=context.rumor_arrival,
    )
    pool: Dict[Node, None] = {}
    for tree in bbsts:
        for node in tree.distance_to_end:
            if node not in context.rumor_seeds:
                pool[node] = None
    return list(pool)
