"""Shared selection infrastructure.

Every selection algorithm consumes a :class:`SelectionContext` — the
fully-resolved LCRB instance (graph, rumor community, rumor seeds, bridge
ends) plus cached derived structures — and produces an ordered list of
protector originators. The context is what stage one of both Algorithms
1 and 3 (RFST bridge-end detection) computes; building it once and sharing
it across the algorithms under comparison mirrors the paper's experimental
setup and keeps the comparisons apples-to-apples.
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.bridge.rfst import find_bridge_ends
from repro.errors import SeedError, ValidationError
from repro.graph.compact import IndexedDiGraph
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import multi_source_distances

__all__ = ["SelectionContext", "ProtectorSelector"]


class SelectionContext:
    """A resolved LCRB instance shared by all selectors.

    Attributes:
        graph: the social network.
        rumor_community: node set of ``C_r``.
        rumor_seeds: ordered rumor originators ``S_R`` (inside ``C_r``).
        bridge_ends: the set ``B`` (computed via RFST if not supplied).
    """

    __slots__ = (
        "graph",
        "rumor_community",
        "rumor_seeds",
        "bridge_ends",
        "_indexed",
        "_rumor_arrival",
    )

    def __init__(
        self,
        graph: DiGraph,
        rumor_community: Iterable[Node],
        rumor_seeds: Iterable[Node],
        bridge_ends: Optional[Iterable[Node]] = None,
    ) -> None:
        self.graph = graph
        self.rumor_community: FrozenSet[Node] = frozenset(rumor_community)
        self.rumor_seeds: Tuple[Node, ...] = tuple(dict.fromkeys(rumor_seeds))
        if not self.rumor_seeds:
            raise SeedError("rumor seed set must not be empty")
        outside = [s for s in self.rumor_seeds if s not in self.rumor_community]
        if outside:
            raise SeedError(
                f"rumor seed(s) outside the rumor community: {outside[:5]!r}"
            )
        if bridge_ends is None:
            self.bridge_ends = find_bridge_ends(
                graph, self.rumor_community, self.rumor_seeds
            )
        else:
            self.bridge_ends = frozenset(bridge_ends)
        self._indexed: Optional[IndexedDiGraph] = None
        self._rumor_arrival: Optional[Dict[Node, int]] = None

    @property
    def indexed(self) -> IndexedDiGraph:
        """Cached int-indexed snapshot of the graph."""
        if self._indexed is None:
            self._indexed = self.graph.to_indexed()
        return self._indexed

    @property
    def rumor_arrival(self) -> Dict[Node, int]:
        """Cached BFS hop distance from the nearest rumor seed (``t_R``)."""
        if self._rumor_arrival is None:
            self._rumor_arrival = multi_source_distances(self.graph, self.rumor_seeds)
        return self._rumor_arrival

    def rumor_seed_ids(self) -> List[int]:
        """Rumor seeds as node ids of :attr:`indexed`."""
        return self.indexed.indices(self.rumor_seeds)

    def bridge_end_ids(self) -> List[int]:
        """Bridge ends as node ids of :attr:`indexed` (sorted for determinism)."""
        return sorted(self.indexed.indices(self.bridge_ends))

    def eligible(self, node: Node) -> bool:
        """True if ``node`` may serve as a protector originator.

        Anything except a rumor originator qualifies (Algorithm 1 line 6
        maximises over ``V \\ S_P ∪ S_R``; the paper's Fig. 2(b) optimal
        solution even includes a node of the rumor community).
        """
        return node in self.graph and node not in self.rumor_seeds

    def __repr__(self) -> str:
        return (
            f"SelectionContext(|V|={self.graph.node_count}, "
            f"|C_r|={len(self.rumor_community)}, |S_R|={len(self.rumor_seeds)}, "
            f"|B|={len(self.bridge_ends)})"
        )


class ProtectorSelector(abc.ABC):
    """Base class for protector-selection algorithms.

    Subclasses implement :meth:`select`. ``budget`` semantics:

    * ``budget=k`` — return at most ``k`` protectors (the OPOAO figures
      fix ``|P| = |R|`` this way for all algorithms).
    * ``budget=None`` — return the algorithm's own full solution (SCBG's
      cover of ``B``; the heuristics' cover-until-protected solution used
      by Table I).
    """

    #: name used in reports and figures.
    name: str = "selector"

    @abc.abstractmethod
    def select(
        self, context: SelectionContext, budget: Optional[int] = None
    ) -> List[Node]:
        """Choose protector originators for the given instance."""

    @staticmethod
    def _check_budget(budget: Optional[int]) -> Optional[int]:
        if budget is None:
            return None
        if isinstance(budget, bool) or not isinstance(budget, int) or budget < 0:
            raise ValidationError(f"budget must be a non-negative int, got {budget!r}")
        return budget

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
