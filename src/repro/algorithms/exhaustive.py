"""Exact (exponential) LCRB-D solver for small instances.

Corollary 1 says no polynomial algorithm beats O(ln n); on *small*
instances the optimum is still computable by enumeration, which gives the
test suite and researchers an exact baseline to measure SCBG's real
approximation ratio against (the property suite asserts the H_n bound
with it).

Enumeration order is by subset size, so the first feasible subset found
is optimal *within the candidate pool*. The pool defaults to the BBST
union — the natural search space, since a node outside every BBST cannot
reach any bridge end before the rumor's unblocked arrival. (In principle
such a node could still matter by delaying the rumor so that its own
front arrives in time after all; pass ``candidates`` explicitly — e.g.
every eligible node — to search the unrestricted optimum on instances
small enough to afford it, as the property-based test suite does.)
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

from repro.algorithms.base import SelectionContext
from repro.algorithms.greedy import candidate_pool
from repro.algorithms.heuristics import prefix_protects_all
from repro.errors import SelectionError, ValidationError
from repro.graph.digraph import Node

__all__ = ["optimal_protector_set", "exact_approximation_ratio"]

#: enumeration guard: C(n, k) summed over k is capped at this many checks.
_MAX_CHECKS = 2_000_000


def _subset_budget(n: int, max_size: int) -> int:
    total = 0
    binom = 1
    for k in range(min(max_size, n) + 1):
        if k > 0:
            binom = binom * (n - k + 1) // k
        total += binom
    return total


def optimal_protector_set(
    context: SelectionContext,
    candidates: Optional[Sequence[Node]] = None,
    max_size: Optional[int] = None,
) -> List[Node]:
    """Smallest protector set covering every bridge end under DOAM.

    Args:
        context: the instance (must have at least one bridge end, else the
            optimum is trivially empty).
        candidates: candidate protectors; defaults to the BBST union.
        max_size: search cap; defaults to the SCBG cover size (an upper
            bound on the optimum by feasibility).

    Returns:
        An optimal protector list (deterministic: lexicographically first
        among the smallest feasible subsets).

    Raises:
        ValidationError: if the enumeration would exceed the safety cap —
            this solver is for *small* instances.
        SelectionError: if no subset within ``max_size`` is feasible.
    """
    if not context.bridge_ends:
        return []
    if candidates is None:
        pool = candidate_pool(context, "bbst")
    else:
        pool = [node for node in dict.fromkeys(candidates) if context.eligible(node)]
    pool = sorted(pool, key=repr)
    if max_size is None:
        from repro.algorithms.scbg import SCBGSelector

        max_size = len(SCBGSelector().select(context))
    if _subset_budget(len(pool), max_size) > _MAX_CHECKS:
        raise ValidationError(
            f"enumeration over {len(pool)} candidates up to size {max_size} "
            "exceeds the exact-solver budget; this solver is for small instances"
        )
    for size in range(max_size + 1):
        for combo in itertools.combinations(pool, size):
            if prefix_protects_all(context, list(combo)):
                return list(combo)
    raise SelectionError(
        f"no protector set of size <= {max_size} covers all bridge ends"
    )


def exact_approximation_ratio(context: SelectionContext) -> float:
    """SCBG's measured approximation ratio on a small instance.

    Returns ``len(SCBG) / len(OPT)`` (1.0 when both are empty).
    """
    from repro.algorithms.scbg import SCBGSelector

    scbg = SCBGSelector().select(context)
    optimum = optimal_protector_set(context, max_size=len(scbg))
    if not optimum:
        return 1.0
    return len(scbg) / len(optimum)
