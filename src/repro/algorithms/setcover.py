"""Greedy set cover (Definition 4 / Algorithm 2).

The classic H_n-approximation: repeatedly pick the set covering the most
still-uncovered elements. SCBG (Algorithm 3) feeds it the ``SW_u``
coverage map; Theorem 2 inherits the O(ln n) ratio from here, and
Corollary 1 says no polynomial algorithm does asymptotically better
unless P = NP.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Set

from repro.errors import CoverageError

__all__ = ["greedy_set_cover", "cover_deficit"]


def cover_deficit(
    universe: Iterable[Hashable],
    sets: Mapping[Hashable, FrozenSet[Hashable]],
) -> FrozenSet[Hashable]:
    """Elements of ``universe`` that no set covers (empty = feasible)."""
    coverable: Set[Hashable] = set()
    for members in sets.values():
        coverable.update(members)
    return frozenset(set(universe) - coverable)


def greedy_set_cover(
    universe: Iterable[Hashable],
    sets: Mapping[Hashable, FrozenSet[Hashable]],
) -> List[Hashable]:
    """Cover ``universe`` with greedily chosen sets (Algorithm 2).

    Each round selects ``argmax_u |SW_u \\ L|`` — the set with the largest
    number of still-uncovered elements — exactly as Algorithm 2 line 5.
    Ties break on the key's insertion order in ``sets``, making the result
    deterministic.

    Args:
        universe: elements to cover (the bridge ends ``B``).
        sets: mapping set-key -> covered elements (the ``SW_u`` map).

    Returns:
        The chosen keys, in selection order (``W`` of Algorithm 2).

    Raises:
        CoverageError: if the union of all sets does not contain
            ``universe`` (carries the uncovered residue).
    """
    remaining: Set[Hashable] = set(universe)
    if not remaining:
        return []
    deficit = cover_deficit(remaining, sets)
    if deficit:
        raise CoverageError(
            f"{len(deficit)} element(s) cannot be covered by any set",
            uncovered=deficit,
        )

    # Pre-restrict sets to the universe; track insertion order for ties.
    order: Dict[Hashable, int] = {}
    restricted: Dict[Hashable, Set[Hashable]] = {}
    for position, (key, members) in enumerate(sets.items()):
        useful = remaining & members
        if useful:
            order[key] = position
            restricted[key] = set(useful)

    chosen: List[Hashable] = []
    while remaining:
        best_key = None
        best_gain = 0
        for key, members in restricted.items():
            gain = len(members)
            if gain > best_gain or (
                gain == best_gain and best_key is not None and order[key] < order[best_key]
            ):
                best_key = key
                best_gain = gain
        assert best_key is not None and best_gain > 0  # deficit check guarantees this
        chosen.append(best_key)
        covered_now = restricted.pop(best_key)
        remaining -= covered_now
        # Shrink every remaining set; drop the ones that became useless.
        dead: List[Hashable] = []
        for key, members in restricted.items():
            members -= covered_now
            if not members:
                dead.append(key)
        for key in dead:
            del restricted[key]
    return chosen
