"""DegreeDiscount protector selection (Chen et al., KDD 2009 — the
paper's reference [10]).

The classic refinement of MaxDegree for influence seeding: once a node is
selected, its neighbors' effective degrees are *discounted*, because an
edge into an already-selected node no longer contributes fresh reach.
Chen et al.'s IC-specific discount is ``d_v - 2 t_v - (d_v - t_v) t_v p``
where ``t_v`` counts selected neighbors and ``p`` is the IC probability;
we implement that formula on the symmetrised degree, falling back to the
pure-degree discount (``p = 0``) when no probability is given.

Included because the paper cites [10] among the scalable IM heuristics
the MaxDegree baseline descends from; DegreeDiscount is the natural
stronger member of that family to compare against.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set

from repro.algorithms.base import ProtectorSelector, SelectionContext
from repro.algorithms.heuristics import minimal_covering_prefix
from repro.graph.digraph import Node
from repro.utils.validation import check_probability

__all__ = ["DegreeDiscountSelector"]


class DegreeDiscountSelector(ProtectorSelector):
    """Protectors by iteratively discounted degree.

    Args:
        probability: IC-style propagation probability used in the
            discount formula; ``0.0`` (default) gives the pure
            SingleDiscount rule.
    """

    name = "DegreeDiscount"

    def __init__(self, probability: float = 0.0) -> None:
        self.probability = check_probability(probability, "probability")

    def _ranked(self, context: SelectionContext) -> List[Node]:
        graph = context.graph
        p = self.probability
        neighbors: Dict[Node, Set[Node]] = {}
        for node in graph.nodes():
            adjacent = set(graph.successors(node)) | set(graph.predecessors(node))
            adjacent.discard(node)
            neighbors[node] = adjacent
        degree = {node: len(adjacent) for node, adjacent in neighbors.items()}
        selected_neighbor_count = {node: 0 for node in graph.nodes()}
        order = {node: position for position, node in enumerate(graph.nodes())}

        def score(node: Node) -> float:
            d, t = degree[node], selected_neighbor_count[node]
            return d - 2 * t - (d - t) * t * p

        # Lazy max-heap over scores (scores only decrease as picks accrue).
        heap = [
            (-score(node), order[node], node)
            for node in graph.nodes()
            if context.eligible(node)
        ]
        heapq.heapify(heap)
        ranked: List[Node] = []
        chosen: Set[Node] = set()
        while heap:
            negative, position, node = heapq.heappop(heap)
            if node in chosen:
                continue
            current = score(node)
            if -negative > current + 1e-12:
                heapq.heappush(heap, (-current, position, node))
                continue
            ranked.append(node)
            chosen.add(node)
            for neighbor in neighbors[node]:
                if neighbor not in chosen:
                    selected_neighbor_count[neighbor] += 1
        return ranked

    def select(
        self, context: SelectionContext, budget: Optional[int] = None
    ) -> List[Node]:
        budget = self._check_budget(budget)
        ranked = self._ranked(context)
        if budget is not None:
            return ranked[:budget]
        return minimal_covering_prefix(context, ranked)

    def __repr__(self) -> str:
        return f"DegreeDiscountSelector(probability={self.probability})"
