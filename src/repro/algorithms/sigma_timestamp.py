"""Proof-faithful σ(A) estimator over timestamped random graphs.

Section V.A.1 proves Theorem 1 by materialising each OPOAO run as a pair
of *independent* timestamped random graphs — ``G_R`` grown by the rumor
seeds' selection process and ``G_P`` by the protectors' — and classifying
a bridge end as protected via Lemma 2's smallest-in-edge-timestamp
comparison. This module implements σ̂ exactly that way, as a cross-check
of the direct competitive simulation in
:class:`repro.algorithms.greedy.SigmaEstimator`.

The two estimators measure slightly different processes: the proof's
construction lets both cascades expand without occupying nodes against
each other (interaction enters only through the final timestamp
comparison), which *overestimates* each cascade's reach relative to the
interacting simulation. On community-structured instances the protected
verdicts still agree closely — quantified by
``benchmarks/bench_ablation_sigma_estimators.py``.

One structural subtlety: the protector record must be rebuilt per
candidate set (its selection process depends on who is seeded), while
``G_R`` depends only on the rumor seeds and is cached across evaluations,
replica by replica.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional

from repro.algorithms.base import SelectionContext
from repro.diffusion.timestamps import (
    CascadeRecord,
    protected_by_timestamps,
    record_cascade,
)
from repro.errors import SelectionError
from repro.graph.digraph import Node
from repro.obs.registry import metrics
from repro.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["TimestampSigmaEstimator"]


class TimestampSigmaEstimator:
    """σ̂(A) via the submodularity proof's (G_R, G_P) construction.

    Args:
        context: the LCRB instance.
        runs: replica count (one (G_R, G_P) pair per replica).
        steps: selection steps per cascade record (the paper's horizon;
            31 matches the experiments).
        rng: base stream; replica ``i`` derives its rumor record from
            ``rng.fork("R", i)`` and its protector record from
            ``rng.fork("P", i, <set>)`` — the rumor side is coupled across
            candidate sets, mirroring the proof's fixed ``G_R``.
    """

    def __init__(
        self,
        context: SelectionContext,
        runs: int = 30,
        steps: int = 31,
        rng: Optional[RngStream] = None,
    ) -> None:
        self.context = context
        self.runs = int(check_positive(runs, "runs"))
        self.steps = int(check_positive(steps, "steps"))
        self.rng = rng or RngStream(name="timestamp-sigma")
        self._rumor_ids = context.rumor_seed_ids()
        self._end_ids = context.bridge_end_ids()
        self._rumor_records: Optional[List[CascadeRecord]] = None
        self.evaluations = 0

    @property
    def rumor_records(self) -> List[CascadeRecord]:
        """Cached per-replica ``G_R`` records (depend only on ``S_R``)."""
        if self._rumor_records is None:
            self._rumor_records = [
                record_cascade(
                    self.context.indexed,
                    self._rumor_ids,
                    steps=self.steps,
                    rng=self.rng.fork("R", replica),
                )
                for replica in range(self.runs)
            ]
        return self._rumor_records

    def _at_risk(self, record: CascadeRecord) -> FrozenSet[int]:
        """Bridge ends the rumor reaches in this realisation (Lemma 1)."""
        graph = self.context.indexed
        return frozenset(
            end
            for end in self._end_ids
            if record.min_in_timestamp(end, graph.inn[end]) is not None
        )

    def sigma(self, protectors: Iterable[Node]) -> float:
        """Expected |PB(A)| under the timestamp construction."""
        protector_ids = self.context.indexed.indices(dict.fromkeys(protectors))
        overlap = set(protector_ids) & set(self._rumor_ids)
        if overlap:
            raise SelectionError(
                f"protectors overlap rumor seeds: {sorted(overlap)[:5]}"
            )
        self.evaluations += 1
        metrics().inc("selector.sigma_evaluations")
        if not protector_ids:
            return 0.0
        key = tuple(sorted(protector_ids))
        graph = self.context.indexed
        saved_total = 0
        for replica, rumor_record in enumerate(self.rumor_records):
            at_risk = self._at_risk(rumor_record)
            if not at_risk:
                continue
            protector_record = record_cascade(
                graph,
                protector_ids,
                steps=self.steps,
                rng=self.rng.fork("P", replica, key),
            )
            saved = protected_by_timestamps(
                rumor_record, protector_record, graph, at_risk
            )
            saved_total += len(saved)
        return saved_total / self.runs

    def __repr__(self) -> str:
        return (
            f"TimestampSigmaEstimator(runs={self.runs}, steps={self.steps}, "
            f"|B|={len(self._end_ids)})"
        )
