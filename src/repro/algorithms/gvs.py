"""Greedy Viral Stopper (GVS) — the related-work comparator of [26].

Nguyen et al.'s β-Node Protector problems (paper Section II) pick
protectors by *overall decontamination*: greedily add the node whose
seeding most reduces the expected number of infected nodes in the whole
network, rather than the bridge-end objective of LCRB. This module
implements that selector on this library's models so the two objectives
can be compared head-to-head (``tests/algorithms/test_gvs.py`` and the
objective-comparison example).

The estimator reuses the common-random-numbers discipline of
:class:`repro.algorithms.greedy.SigmaEstimator`: replica ``i`` always runs
on ``rng.replica(i)``, making the objective a deterministic function of
the candidate set.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.algorithms.base import ProtectorSelector, SelectionContext
from repro.algorithms.greedy import candidate_pool
from repro.diffusion.base import DEFAULT_MAX_HOPS, DiffusionModel, SeedSets
from repro.diffusion.doam import DOAMModel
from repro.errors import SelectionError
from repro.graph.digraph import Node
from repro.rng import RngStream
from repro.utils.validation import check_fraction, check_positive

__all__ = ["InfectionEstimator", "GreedyViralStopper"]


class InfectionEstimator:
    """Coupled Monte-Carlo estimate of the expected total infections.

    Args:
        context: the LCRB instance (supplies graph and rumor seeds).
        model: diffusion model (DOAM default, as GVS works on rounds of
            deterministic spread; any model is accepted).
        runs: replicas (deterministic models run once).
        max_hops: horizon.
        rng: base stream.
    """

    def __init__(
        self,
        context: SelectionContext,
        model: Optional[DiffusionModel] = None,
        runs: int = 20,
        max_hops: int = DEFAULT_MAX_HOPS,
        rng: Optional[RngStream] = None,
    ) -> None:
        self.context = context
        self.model = model or DOAMModel()
        self.runs = 1 if not self.model.stochastic else int(check_positive(runs, "runs"))
        self.max_hops = int(check_positive(max_hops, "max_hops"))
        self.rng = rng or RngStream(name="gvs")
        self._rumor_ids = context.rumor_seed_ids()
        self.evaluations = 0

    def expected_infections(self, protectors: Iterable[Node]) -> float:
        """Mean infected-node count when ``protectors`` are seeded."""
        protector_ids = self.context.indexed.indices(dict.fromkeys(protectors))
        overlap = set(protector_ids) & set(self._rumor_ids)
        if overlap:
            raise SelectionError(
                f"protectors overlap rumor seeds: {sorted(overlap)[:5]}"
            )
        self.evaluations += 1
        seeds = SeedSets(rumors=self._rumor_ids, protectors=protector_ids)
        total = 0
        for replica in range(self.runs):
            outcome = self.model.run(
                self.context.indexed,
                seeds,
                rng=self.rng.replica(replica) if self.model.stochastic else None,
                max_hops=self.max_hops,
            )
            total += outcome.infected_count
        return total / self.runs


class GreedyViralStopper(ProtectorSelector):
    """Greedy protector selection minimising network-wide infections.

    Stopping modes mirror :class:`~repro.algorithms.greedy.GreedySelector`:

    * ``budget=k`` — exactly ``k`` protectors.
    * ``budget=None`` — add protectors until expected infections fall to
      ``beta`` times the unprotected level (the decontamination rate
      ``1 - β`` of [26]), configured at construction.

    Args:
        model: diffusion model (DOAM default).
        runs: replicas per estimate.
        max_hops: horizon.
        beta: target residual-infection fraction for the budget-free mode.
        pool: candidate pool name (see
            :func:`repro.algorithms.greedy.candidate_pool`).
        max_candidates: optional pool cap (kept in pool order).
        rng: base stream.
    """

    name = "GVS"

    def __init__(
        self,
        model: Optional[DiffusionModel] = None,
        runs: int = 20,
        max_hops: int = DEFAULT_MAX_HOPS,
        beta: float = 0.5,
        pool: str = "bbst",
        max_candidates: Optional[int] = None,
        rng: Optional[RngStream] = None,
    ) -> None:
        self.model = model or DOAMModel()
        self.runs = int(check_positive(runs, "runs"))
        self.max_hops = int(check_positive(max_hops, "max_hops"))
        self.beta = check_fraction(beta, "beta")
        self.pool = pool
        if max_candidates is not None:
            max_candidates = int(check_positive(max_candidates, "max_candidates"))
        self.max_candidates = max_candidates
        self.rng = rng or RngStream(name="gvs-selector")
        self.last_evaluations = 0

    def select(
        self, context: SelectionContext, budget: Optional[int] = None
    ) -> List[Node]:
        budget = self._check_budget(budget)
        self.last_evaluations = 0
        if budget == 0:
            return []
        estimator = InfectionEstimator(
            context,
            model=self.model,
            runs=self.runs,
            max_hops=self.max_hops,
            rng=self.rng.fork("estimator"),
        )
        pool = candidate_pool(context, self.pool)
        if self.max_candidates is not None:
            pool = pool[: self.max_candidates]
        if not pool:
            raise SelectionError("candidate pool is empty")

        baseline = estimator.expected_infections([])
        target = self.beta * baseline
        chosen: List[Node] = []
        chosen_set: Set[Node] = set()
        current = baseline
        while True:
            if budget is not None and len(chosen) >= budget:
                break
            if budget is None and current <= target:
                break
            if len(chosen) >= len(pool):
                if budget is None:
                    raise SelectionError(
                        f"pool exhausted at {current:.1f} expected infections "
                        f"(target {target:.1f})"
                    )
                break
            best_node: Optional[Node] = None
            best_value = float("inf")
            for node in pool:
                if node in chosen_set:
                    continue
                value = estimator.expected_infections(chosen + [node])
                if value < best_value:
                    best_value = value
                    best_node = node
            assert best_node is not None
            chosen.append(best_node)
            chosen_set.add(best_node)
            current = best_value
        self.last_evaluations = estimator.evaluations
        return chosen

    def __repr__(self) -> str:
        return (
            f"GreedyViralStopper(model={self.model.name}, runs={self.runs}, "
            f"beta={self.beta})"
        )
