"""CELF: lazy-evaluation greedy (Leskovec et al. 2007), the standard fix
for the cost the paper's conclusion flags ("the greedy algorithm is time
consuming ... finding efficient algorithms to overcome this drawback is a
possible research direction").

Because σ is submodular (Theorem 1), a candidate's marginal gain can only
shrink as the chosen set grows; CELF therefore keeps candidates in a
max-heap keyed by their *last known* gain and only re-evaluates the top
entry. When the freshly re-evaluated top remains on top, it is provably
the true argmax and is selected without touching the rest of the heap —
typically after a handful of evaluations instead of one per candidate.

With this library's coupled σ̂ estimator (a deterministic function of the
candidate set — see :mod:`repro.algorithms.greedy`), CELF selects exactly
the same protector sequence as exhaustive greedy; the ablation bench
measures the evaluation-count savings.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.algorithms.base import SelectionContext
from repro.algorithms.greedy import GreedySelector
from repro.errors import SelectionError
from repro.graph.digraph import Node
from repro.obs.registry import metrics

__all__ = ["CELFGreedySelector"]


class CELFGreedySelector(GreedySelector):
    """Greedy with CELF lazy re-evaluation; same output, far cheaper.

    Constructor arguments are identical to
    :class:`~repro.algorithms.greedy.GreedySelector`.
    """

    name = "Greedy"  # same algorithm; reports should not distinguish them

    def select(
        self, context: SelectionContext, budget: Optional[int] = None
    ) -> List[Node]:
        budget = self._check_budget(budget)
        self.last_evaluations = 0
        if budget == 0 or not context.bridge_ends:
            return []
        estimator = self.make_estimator(context)
        pool = self.candidates(context)
        if not pool:
            raise SelectionError("candidate pool is empty")

        from repro.exec.checkpoint import as_store

        store = as_store(self.checkpoint)
        key = "" if store is None else self._checkpoint_key(context)
        chosen: List[Node] = (
            [] if store is None
            else self._restore_chosen(store, key, context, budget)
        )
        chosen_set = set(chosen)
        # Resuming from a checkpointed prefix: σ̂ is deterministic given
        # the set, so re-racing the prefix and re-seeding the heap with
        # fresh gains reproduces the uninterrupted run's remaining picks
        # (CELF == exhaustive greedy under the coupled estimator, and
        # greedy restarted from its own prefix picks the same suffix).
        current_sigma = estimator.sigma(chosen) if chosen else 0.0
        marginal_calls = 0
        queue_hits = 0
        reevaluations = 0
        # Heap entries: (-gain, insertion_order, node, round_evaluated).
        # insertion_order keeps ties deterministic and matches exhaustive
        # greedy's first-in-pool-order tie-break.
        # The initial round evaluates every pool node — the one
        # embarrassingly parallel part of CELF, batched so a configured
        # worker pool can fan it out. The lazy rounds below are
        # inherently sequential (each pop depends on the last) and stay
        # serial.
        heap: List[Tuple[float, int, Node, int]] = []
        if budget is None or len(chosen) < budget:
            remaining = [
                (order, node)
                for order, node in enumerate(pool)
                if node not in chosen_set
            ]
            initial_gains = self._sigma_batch(
                estimator, [chosen + [node] for _, node in remaining]
            )
            for (order, node), sigma in zip(remaining, initial_gains):
                marginal_calls += 1
                heap.append((current_sigma - sigma, order, node, 0))
            heapq.heapify(heap)

        round_index = 0
        while not self._stop(estimator, chosen, budget):
            if not heap:
                if budget is None:
                    raise SelectionError(
                        f"pool exhausted at protected fraction "
                        f"{estimator.protected_fraction(chosen):.3f} < alpha={self.alpha}"
                    )
                break
            round_index += 1
            while True:
                neg_gain, order, node, evaluated_round = heapq.heappop(heap)
                if evaluated_round == round_index:
                    # Lazy hit: the stale bound survived re-evaluation on
                    # top, so the rest of the queue was never touched.
                    chosen.append(node)
                    current_sigma += -neg_gain
                    queue_hits += 1
                    if store is not None:
                        self._save_chosen(store, key, context, chosen)
                    break
                fresh_gain = estimator.sigma(chosen + [node]) - current_sigma
                marginal_calls += 1
                reevaluations += 1
                heapq.heappush(heap, (-fresh_gain, order, node, round_index))
        self.last_evaluations = estimator.evaluations
        registry = metrics()
        if registry.enabled:
            registry.counter("selector.celf_queue_hits").add(queue_hits)
            registry.counter("selector.celf_reevaluations").add(reevaluations)
            registry.counter("selector.marginal_gain_calls").add(marginal_calls)
        return chosen
