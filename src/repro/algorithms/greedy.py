"""Monte-Carlo greedy for LCRB-P under OPOAO (Algorithm 1).

The objective ``σ(A)`` is the expected number of bridge ends saved by
seeding protectors ``A`` — the expected size of the protector blocking set
``PB(A)``: bridge ends that *would* be infected with no protectors but are
*not* infected when ``A`` is seeded (Section V.A.1). Theorem 1 proves σ is
monotone and submodular, so greedily adding the argmax-marginal-gain node
achieves (1 - 1/e)·OPT.

Estimation
----------
σ is estimated with **common random numbers**: replica ``i`` always runs on
the stream ``rng.replica(i)``, whether protectors are seeded or not, so
``PB(A)`` is evaluated on coupled realisations exactly as the proof's
paired random graphs ``(G_R, G_P)``, and σ̂ is a *deterministic function of
the set A* given the base stream. That determinism is what lets CELF
(:mod:`repro.algorithms.celf`) reuse stale bounds soundly and makes greedy
runs reproducible.

Candidate pool
--------------
Algorithm 1 maximises over all of ``V \\ (S_P ∪ S_R)``; evaluating every
node is the "time consuming" cost the paper's conclusion laments. The
estimator therefore supports restricting candidates to the union of the
bridge ends' backward trees (``pool="bbst"``, default): nodes outside every
BBST are too far to beat the rumor to any bridge end when both cascades
advance at the same expected rate, so the restriction loses essentially
nothing while cutting the pool by orders of magnitude. ``pool="all"``
recovers the paper's literal search space.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.algorithms.base import ProtectorSelector, SelectionContext
from repro.bridge.bbst import build_all_bbsts
from repro.diffusion.base import DEFAULT_MAX_HOPS, INFECTED, DiffusionModel, SeedSets
from repro.diffusion.opoao import OPOAOModel
from repro.errors import SelectionError
from repro.graph.digraph import Node
from repro.obs.registry import metrics
from repro.rng import RngStream
from repro.utils.validation import check_fraction, check_positive

__all__ = ["SigmaEstimator", "GreedySelector", "candidate_pool"]


def candidate_pool(context: SelectionContext, pool: str = "bbst") -> List[Node]:
    """Resolve a named candidate pool for protector selection.

    Args:
        context: the LCRB instance.
        pool: ``"bbst"`` (union of all bridge-end backward trees, minus
            rumor seeds) or ``"all"`` (every eligible node).

    Returns:
        Candidates in deterministic order.
    """
    if pool == "all":
        return [node for node in context.graph.nodes() if context.eligible(node)]
    if pool != "bbst":
        raise SelectionError(f"pool must be 'bbst' or 'all', got {pool!r}")
    bbsts = build_all_bbsts(
        context.graph,
        sorted(context.bridge_ends, key=repr),
        context.rumor_seeds,
        rumor_arrival=context.rumor_arrival,
    )
    ordered: Dict[Node, None] = {}
    for tree in bbsts:
        for node in tree.distance_to_end:
            if context.eligible(node):
                ordered[node] = None
    return list(ordered)


class SigmaEstimator:
    """Coupled Monte-Carlo estimator of the protector influence σ(A).

    Args:
        context: the LCRB instance.
        model: diffusion model (OPOAO by default; any
            :class:`~repro.diffusion.base.DiffusionModel` works, which is
            how the extension benches run greedy under IC/LT).
        runs: number of coupled replicas.
        max_hops: horizon per run (paper: 31).
        rng: base stream; replica ``i`` always uses ``rng.replica(i)``.
    """

    def __init__(
        self,
        context: SelectionContext,
        model: Optional[DiffusionModel] = None,
        runs: int = 30,
        max_hops: int = DEFAULT_MAX_HOPS,
        rng: Optional[RngStream] = None,
    ) -> None:
        self.context = context
        self.model = model or OPOAOModel()
        self.runs = int(check_positive(runs, "runs"))
        self.max_hops = int(check_positive(max_hops, "max_hops"))
        self.rng = rng or RngStream(name="sigma")
        self._rumor_ids = context.rumor_seed_ids()
        self._end_ids = context.bridge_end_ids()
        self._baseline: Optional[List[FrozenSet[int]]] = None
        self.evaluations = 0  # σ̂ calls, for the CELF-vs-greedy ablation

    def _infected_ends(self, protector_ids: Sequence[int], replica: int) -> FrozenSet[int]:
        seeds = SeedSets(rumors=self._rumor_ids, protectors=protector_ids)
        outcome = self.model.run(
            self.context.indexed,
            seeds,
            rng=self.rng.replica(replica) if self.model.stochastic else None,
            max_hops=self.max_hops,
        )
        return frozenset(
            end for end in self._end_ids if outcome.states[end] == INFECTED
        )

    @property
    def baseline(self) -> List[FrozenSet[int]]:
        """Per-replica bridge ends infected with **no** protectors."""
        if self._baseline is None:
            self._baseline = [
                self._infected_ends((), replica) for replica in range(self.runs)
            ]
        return self._baseline

    def sigma(self, protectors: Iterable[Node]) -> float:
        """σ̂(A): mean size of the protector blocking set over replicas."""
        protector_ids = self.context.indexed.indices(dict.fromkeys(protectors))
        overlap = set(protector_ids) & set(self._rumor_ids)
        if overlap:
            raise SelectionError(f"protectors overlap rumor seeds: {sorted(overlap)[:5]}")
        self.evaluations += 1
        metrics().inc("selector.sigma_evaluations")
        saved_total = 0
        for replica, at_risk in enumerate(self.baseline):
            infected_now = self._infected_ends(protector_ids, replica)
            saved_total += len(at_risk - infected_now)
        return saved_total / self.runs

    def protected_fraction(self, protectors: Iterable[Node]) -> float:
        """Mean fraction of bridge ends **not infected** at the end.

        Definition 2's protection level: a bridge end counts as protected
        when the rumor does not take it (whether actively protected or
        simply never reached).
        """
        if not self._end_ids:
            return 1.0
        protector_ids = self.context.indexed.indices(dict.fromkeys(protectors))
        self.evaluations += 1
        metrics().inc("selector.sigma_evaluations")
        safe_total = 0
        for replica in range(self.runs):
            infected_now = self._infected_ends(protector_ids, replica)
            safe_total += len(self._end_ids) - len(infected_now)
        return safe_total / (self.runs * len(self._end_ids))

    def __repr__(self) -> str:
        return (
            f"SigmaEstimator(model={self.model.name}, runs={self.runs}, "
            f"max_hops={self.max_hops})"
        )


class GreedySelector(ProtectorSelector):
    """Algorithm 1: iteratively add the node with the best σ marginal gain.

    Two stopping modes, matching how the paper uses the algorithm:

    * ``budget=k`` passed to :meth:`select` — pick exactly ``k`` protectors
      (the OPOAO figures fix ``|P| = |R|``).
    * ``budget=None`` — run Algorithm 1's own loop: add protectors until
      the expected protected fraction of bridge ends reaches ``alpha``
      (Definition 3's LCRB-P level), configured at construction.

    Args:
        model: diffusion model for σ estimation (default OPOAO).
        runs: coupled replicas per σ̂ evaluation.
        max_hops: horizon per run.
        alpha: protection level for the budget-free mode, in (0, 1).
        pool: candidate pool name (see :func:`candidate_pool`).
        max_candidates: optional hard cap on the pool, keeping the
            candidates with the largest BBST coverage first (an explicit
            tractability knob; ``None`` = no cap).
        rng: base stream (forked internally; the selector never mutates
            the caller's stream position).
        backend: ``None`` estimates σ with the per-replica
            :class:`SigmaEstimator`; a kernel backend name (``"python"``/
            ``"numpy"``/``"auto"``) swaps in the batched
            :class:`~repro.kernels.sigma.BatchedSigmaEvaluator` (same
            coupled-worlds semantics, one vectorized sweep per σ̂ call).
        world_source: world sampler for the batched estimator —
            ``"native"`` (fastest) or ``"shared"`` (bit-identical across
            backends). Ignored when ``backend`` is ``None``.
        workers: worker request for parallel σ̂ rounds (``None``/``1``
            serial, ``0`` one per CPU). Only the batched estimator can
            fan out, so this needs ``backend``; selections are
            bit-identical whatever the worker count.
        chunk_timeout: per-chunk pool deadline in seconds for parallel
            σ̂ rounds (``None`` waits forever; see ``docs/parallel.md``).
        chunk_retries: deterministic resubmission budget per failed
            chunk (``None`` uses the executor default).
        checkpoint: a path or :class:`~repro.exec.checkpoint.\
            CheckpointStore`; when set, every completed selection round
            is saved, and a matching checkpoint resumes from its chosen
            prefix — finishing bit-identical to an uninterrupted run.
        executor: a shared :class:`~repro.exec.pool.ParallelExecutor`
            handed down to the batched estimator so σ̂ rounds reuse one
            warm pool (e.g. the CLI-owned pool); ``None`` lets the
            estimator own its executor.
    """

    name = "Greedy"

    def __init__(
        self,
        model: Optional[DiffusionModel] = None,
        runs: int = 30,
        max_hops: int = DEFAULT_MAX_HOPS,
        alpha: float = 0.8,
        pool: str = "bbst",
        max_candidates: Optional[int] = None,
        rng: Optional[RngStream] = None,
        backend: Optional[str] = None,
        world_source: str = "native",
        workers: Optional[int] = None,
        chunk_timeout: Optional[float] = None,
        chunk_retries: Optional[int] = None,
        checkpoint=None,
        executor=None,
    ) -> None:
        self.model = model or OPOAOModel()
        self.runs = int(check_positive(runs, "runs"))
        self.max_hops = int(check_positive(max_hops, "max_hops"))
        self.alpha = check_fraction(alpha, "alpha", exclusive=True)
        self.pool = pool
        if max_candidates is not None:
            max_candidates = int(check_positive(max_candidates, "max_candidates"))
        self.max_candidates = max_candidates
        self.rng = rng or RngStream(name="greedy")
        self.backend = backend
        self.world_source = world_source
        self.workers = workers
        self.chunk_timeout = chunk_timeout
        self.chunk_retries = chunk_retries
        self.checkpoint = checkpoint
        self.executor = executor
        #: σ̂ evaluations consumed by the most recent select() call — the
        #: quantity the CELF-vs-greedy ablation bench compares.
        self.last_evaluations = 0

    # -- shared machinery (CELF subclasses reuse these) -------------------------

    def make_estimator(self, context: SelectionContext) -> SigmaEstimator:
        """Build the σ estimator bound to this selector's settings.

        With a kernel ``backend`` configured this returns a
        :class:`~repro.kernels.sigma.BatchedSigmaEvaluator`, which is
        duck-compatible with :class:`SigmaEstimator` for everything the
        selection loop consumes (``sigma``, ``protected_fraction``,
        ``evaluations``).
        """
        if self.backend is not None:
            from repro.kernels.sigma import BatchedSigmaEvaluator

            return BatchedSigmaEvaluator(
                context,
                model=self.model,
                runs=self.runs,
                max_hops=self.max_hops,
                rng=self.rng.fork("sigma"),
                backend=self.backend,
                world_source=self.world_source,
                workers=self.workers,
                chunk_timeout=self.chunk_timeout,
                chunk_retries=self.chunk_retries,
                executor=self.executor,
            )
        return SigmaEstimator(
            context,
            model=self.model,
            runs=self.runs,
            max_hops=self.max_hops,
            rng=self.rng.fork("sigma"),
        )

    def candidates(self, context: SelectionContext) -> List[Node]:
        """Resolve (and possibly cap) the candidate pool."""
        nodes = candidate_pool(context, self.pool)
        if self.max_candidates is not None and len(nodes) > self.max_candidates:
            coverage = _bbst_coverage_sizes(context)
            order = {node: position for position, node in enumerate(nodes)}
            nodes.sort(key=lambda node: (-coverage.get(node, 0), order[node]))
            nodes = nodes[: self.max_candidates]
        return nodes

    @staticmethod
    def _sigma_batch(estimator, candidate_sets: List[List[Node]]) -> List[float]:
        """σ̂ for a whole round of candidate sets, in order.

        Routed through the estimator's ``sigma_many`` when it has one
        (the batched evaluator fans the round out over its worker pool);
        otherwise a plain per-set loop. Both paths return the same
        values in the same order, so the selection below is identical.
        """
        batched = getattr(estimator, "sigma_many", None)
        if batched is not None:
            return batched(candidate_sets)
        return [estimator.sigma(candidate) for candidate in candidate_sets]

    def _stop(
        self,
        estimator: SigmaEstimator,
        chosen: List[Node],
        budget: Optional[int],
    ) -> bool:
        if budget is not None:
            return len(chosen) >= budget
        return estimator.protected_fraction(chosen) >= self.alpha

    # -- checkpointing (shared with the CELF subclass) ---------------------------

    def _checkpoint_key(self, context: SelectionContext) -> str:
        """Run-key fingerprint for greedy-family checkpoints.

        Deliberately excludes ``budget`` and ``alpha``: greedy selection
        is prefix-consistent in the budget (round ``k`` picks the same
        node whatever the eventual stopping point), so a shorter run's
        checkpoint seeds a longer one. CELF shares the kind and the key
        — under the coupled deterministic σ̂ it picks the same prefix as
        exhaustive greedy.
        """
        from repro.exec.checkpoint import run_key

        return run_key(
            kind="greedy",
            model=self.model.name,
            runs=self.runs,
            max_hops=self.max_hops,
            seed=self.rng.seed,
            pool=self.pool,
            max_candidates=self.max_candidates,
            backend=self.backend or "",
            world_source=self.world_source,
            nodes=context.indexed.node_count,
            edges=context.indexed.edge_count,
            rumors=sorted(context.rumor_seed_ids()),
            ends=sorted(context.bridge_end_ids()),
        )

    def _restore_chosen(
        self, store, key: str, context: SelectionContext, budget: Optional[int]
    ) -> List[Node]:
        """The checkpointed chosen prefix (possibly truncated to budget)."""
        entry = store.load("greedy", key)
        if entry is None:
            return []
        ids = [int(node_id) for node_id in entry["state"]["chosen_ids"]]
        if budget is not None:
            ids = ids[:budget]
        labels = context.indexed.labels
        chosen = [labels[node_id] for node_id in ids]
        if chosen:
            metrics().inc("exec.resumed_rounds", len(chosen))
        return chosen

    def _save_chosen(
        self, store, key: str, context: SelectionContext, chosen: List[Node]
    ) -> None:
        store.save(
            "greedy",
            key,
            {"chosen_ids": context.indexed.indices(chosen)},
            rounds=len(chosen),
        )

    # -- the algorithm -----------------------------------------------------------

    def select(
        self, context: SelectionContext, budget: Optional[int] = None
    ) -> List[Node]:
        budget = self._check_budget(budget)
        self.last_evaluations = 0
        if budget == 0 or not context.bridge_ends:
            return []
        estimator = self.make_estimator(context)
        pool = self.candidates(context)
        if not pool:
            raise SelectionError("candidate pool is empty")

        from repro.exec.checkpoint import as_store

        store = as_store(self.checkpoint)
        key = "" if store is None else self._checkpoint_key(context)
        chosen: List[Node] = (
            [] if store is None
            else self._restore_chosen(store, key, context, budget)
        )
        chosen_set: Set[Node] = set(chosen)
        marginal_calls = 0
        while not self._stop(estimator, chosen, budget):
            if len(chosen) >= len(pool):
                if budget is None:
                    raise SelectionError(
                        f"pool exhausted at protected fraction "
                        f"{estimator.protected_fraction(chosen):.3f} < alpha={self.alpha}"
                    )
                break
            remaining = [node for node in pool if node not in chosen_set]
            sigmas = self._sigma_batch(
                estimator, [chosen + [node] for node in remaining]
            )
            marginal_calls += len(remaining)
            best_node: Optional[Node] = None
            best_sigma = -1.0
            # Strict > keeps the first-in-pool-order tie-break of the
            # original per-node loop.
            for node, sigma in zip(remaining, sigmas):
                if sigma > best_sigma:
                    best_sigma = sigma
                    best_node = node
            assert best_node is not None
            chosen.append(best_node)
            chosen_set.add(best_node)
            if store is not None:
                self._save_chosen(store, key, context, chosen)
        self.last_evaluations = estimator.evaluations
        registry = metrics()
        if registry.enabled:
            registry.counter("selector.marginal_gain_calls").add(marginal_calls)
        return chosen

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(model={self.model.name}, runs={self.runs}, "
            f"alpha={self.alpha}, pool={self.pool!r})"
        )


def _bbst_coverage_sizes(context: SelectionContext) -> Dict[Node, int]:
    """How many bridge ends each node's BBST membership covers (cheap proxy)."""
    bbsts = build_all_bbsts(
        context.graph,
        sorted(context.bridge_ends, key=repr),
        context.rumor_seeds,
        rumor_arrival=context.rumor_arrival,
    )
    sizes: Dict[Node, int] = {}
    for tree in bbsts:
        for node in tree.distance_to_end:
            sizes[node] = sizes.get(node, 0) + 1
    return sizes
