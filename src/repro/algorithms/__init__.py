"""Protector-selection algorithms.

The paper's two algorithms and the heuristics they are compared against
(Section V, VI.B.1):

* :mod:`repro.algorithms.greedy` — Monte-Carlo greedy for LCRB-P under
  OPOAO (Algorithm 1); (1 - 1/e)-approximation by Theorem 1.
* :mod:`repro.algorithms.celf` — lazy-evaluation (CELF) accelerated
  greedy; same output, far fewer σ evaluations (the paper's Section VII
  names greedy's cost as the open problem — this is the standard answer).
* :mod:`repro.algorithms.scbg` — Set Cover Based Greedy for LCRB-D under
  DOAM (Algorithms 2 + 3); O(ln n)-approximation by Theorem 2.
* :mod:`repro.algorithms.ris_greedy` — sketch-greedy max coverage over
  RR sets (:mod:`repro.sketch`); the sampling-based answer to the same
  open problem, (1 - 1/e - ε)-quality at a fraction of the cost.
* :mod:`repro.algorithms.setcover` — the generic greedy set cover SCBG
  reduces to (Definition 4).
* :mod:`repro.algorithms.heuristics` — MaxDegree, Proximity, Random
  baselines (Section VI.B.1) and the cover-until-done driver used to
  compute their LCRB-D "solutions" for Table I.
* :mod:`repro.algorithms.pagerank` — PageRank-ranked protectors, an
  extension baseline.
"""

from repro.algorithms.base import ProtectorSelector, SelectionContext
from repro.algorithms.celf import CELFGreedySelector
from repro.algorithms.greedy import GreedySelector, SigmaEstimator
from repro.algorithms.gvs import GreedyViralStopper, InfectionEstimator
from repro.algorithms.heuristics import (
    MaxDegreeSelector,
    ProximitySelector,
    RandomSelector,
)
from repro.algorithms.pagerank import PageRankSelector, pagerank
from repro.algorithms.ris_greedy import RISGreedySelector
from repro.algorithms.scbg import SCBGSelector
from repro.algorithms.setcover import greedy_set_cover
from repro.algorithms.source_detection import estimate_sources

__all__ = [
    "ProtectorSelector",
    "SelectionContext",
    "GreedySelector",
    "SigmaEstimator",
    "CELFGreedySelector",
    "RISGreedySelector",
    "SCBGSelector",
    "greedy_set_cover",
    "MaxDegreeSelector",
    "ProximitySelector",
    "RandomSelector",
    "PageRankSelector",
    "pagerank",
    "estimate_sources",
    "GreedyViralStopper",
    "InfectionEstimator",
]
