"""PageRank and a PageRank-ranked protector heuristic (extension).

Not part of the paper's comparison, but a standard centrality baseline a
downstream user will reach for; included to round out the heuristic suite
and exercised by the ablation benches. The power-iteration implementation
is self-contained (no numpy dependency for the core library).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.algorithms.base import ProtectorSelector, SelectionContext
from repro.algorithms.heuristics import minimal_covering_prefix
from repro.graph.digraph import DiGraph, Node
from repro.utils.validation import check_positive, check_probability

__all__ = ["pagerank", "PageRankSelector"]


def pagerank(
    graph: DiGraph,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> Dict[Node, float]:
    """Power-iteration PageRank with uniform teleport.

    Dangling nodes (out-degree 0) redistribute their mass uniformly, the
    standard fix. Scores sum to 1.

    Args:
        graph: directed graph.
        damping: follow-probability d (teleport with 1 - d).
        max_iterations: iteration cap.
        tolerance: L1 convergence threshold.
    """
    check_probability(damping, "damping")
    check_positive(max_iterations, "max_iterations")
    nodes = list(graph.nodes())
    n = len(nodes)
    if n == 0:
        return {}
    position = {node: index for index, node in enumerate(nodes)}
    out_lists = [[position[h] for h in graph.successors(node)] for node in nodes]

    rank = [1.0 / n] * n
    for _ in range(max_iterations):
        dangling_mass = sum(rank[i] for i in range(n) if not out_lists[i])
        fresh = [(1.0 - damping) / n + damping * dangling_mass / n] * n
        for i in range(n):
            targets = out_lists[i]
            if not targets:
                continue
            share = damping * rank[i] / len(targets)
            for j in targets:
                fresh[j] += share
        delta = sum(abs(fresh[i] - rank[i]) for i in range(n))
        rank = fresh
        if delta < tolerance:
            break
    return {node: rank[position[node]] for node in nodes}


class PageRankSelector(ProtectorSelector):
    """Protectors in decreasing PageRank order."""

    name = "PageRank"

    def __init__(self, damping: float = 0.85) -> None:
        self.damping = check_probability(damping, "damping")

    def select(
        self, context: SelectionContext, budget: Optional[int] = None
    ) -> List[Node]:
        budget = self._check_budget(budget)
        scores = pagerank(context.graph, damping=self.damping)
        order = {node: index for index, node in enumerate(context.graph.nodes())}
        ranked = [node for node in context.graph.nodes() if context.eligible(node)]
        ranked.sort(key=lambda node: (-scores[node], order[node]))
        if budget is not None:
            return ranked[:budget]
        return minimal_covering_prefix(context, ranked)

    def __repr__(self) -> str:
        return f"PageRankSelector(damping={self.damping})"
