"""Baseline heuristics: MaxDegree, Proximity, Random (Section VI.B.1).

* **MaxDegree** — "simply chooses the nodes according to the decreasing
  order of node degree as the protectors".
* **Proximity** — "the direct out-neighbors of rumors are chosen as the
  protectors", "selected randomly from the direct neighbors of rumor
  originators" (Section VI.B.2). When the first ring is exhausted the
  pool extends to the next BFS ring out from the rumor seeds — the natural
  continuation of "proximity" — so the heuristic can always produce a full
  LCRB-D solution.
* **Random** — uniform eligible nodes; the paper excludes it from plots
  for poor performance but it remains useful as a floor in tests.

For Table I the heuristics need their *own* LCRB-D solutions ("we compute
their solutions first"): protectors are added in heuristic order until a
DOAM run protects every bridge end. Protection is monotone in the
protector set under DOAM (more seeds only speed the P-front and block the
R-front), so the minimal covering prefix is found by binary search over
prefix length — O(log n) deterministic diffusions instead of O(n).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.algorithms.base import ProtectorSelector, SelectionContext
from repro.diffusion.base import PROTECTED, SeedSets
from repro.diffusion.doam import DOAMModel
from repro.errors import CoverageError, SelectionError
from repro.graph.digraph import Node
from repro.graph.traversal import bfs_layers
from repro.rng import RngStream

__all__ = [
    "MaxDegreeSelector",
    "ProximitySelector",
    "RandomSelector",
    "KCoreSelector",
    "minimal_covering_prefix",
    "prefix_protects_all",
]


def prefix_protects_all(
    context: SelectionContext, protectors: Sequence[Node]
) -> bool:
    """True if seeding ``protectors`` leaves every bridge end protected
    at the end of a DOAM run."""
    if not context.bridge_ends:
        return True
    indexed = context.indexed
    seeds = SeedSets(
        rumors=context.rumor_seed_ids(),
        protectors=indexed.indices(protectors),
    )
    outcome = DOAMModel().run(indexed, seeds, max_hops=max(2, indexed.node_count))
    return all(
        outcome.states[end_id] == PROTECTED for end_id in context.bridge_end_ids()
    )


def minimal_covering_prefix(
    context: SelectionContext, ordered_candidates: Sequence[Node]
) -> List[Node]:
    """Shortest prefix of ``ordered_candidates`` protecting all bridge ends.

    Relies on DOAM protection being monotone in the protector seed set, so
    feasibility over prefix lengths is a step function and binary search
    applies.

    Raises:
        CoverageError: if even the full candidate list fails.
    """
    if not context.bridge_ends:
        return []
    if not prefix_protects_all(context, ordered_candidates):
        raise CoverageError(
            f"{len(ordered_candidates)} candidate(s) cannot protect all "
            f"{len(context.bridge_ends)} bridge ends"
        )
    lo, hi = 1, len(ordered_candidates)
    while lo < hi:
        mid = (lo + hi) // 2
        if prefix_protects_all(context, ordered_candidates[:mid]):
            hi = mid
        else:
            lo = mid + 1
    return list(ordered_candidates[:lo])


class MaxDegreeSelector(ProtectorSelector):
    """Protectors in decreasing degree order.

    Args:
        direction: which degree to rank by — ``"out"`` (default; what an
            activation-capable protector has), ``"in"``, or ``"total"``.
    """

    name = "MaxDegree"

    def __init__(self, direction: str = "out") -> None:
        if direction not in ("out", "in", "total"):
            raise SelectionError(f"direction must be out/in/total, got {direction!r}")
        self.direction = direction

    def _ranked(self, context: SelectionContext) -> List[Node]:
        graph = context.graph
        if self.direction == "out":
            degree = graph.out_degree
        elif self.direction == "in":
            degree = graph.in_degree
        else:
            degree = graph.degree
        order = {node: position for position, node in enumerate(graph.nodes())}
        candidates = [node for node in graph.nodes() if context.eligible(node)]
        candidates.sort(key=lambda node: (-degree(node), order[node]))
        return candidates

    def select(
        self, context: SelectionContext, budget: Optional[int] = None
    ) -> List[Node]:
        budget = self._check_budget(budget)
        ranked = self._ranked(context)
        if budget is not None:
            return ranked[:budget]
        return minimal_covering_prefix(context, ranked)

    def __repr__(self) -> str:
        return f"MaxDegreeSelector(direction={self.direction!r})"


class ProximitySelector(ProtectorSelector):
    """Random direct out-neighbors of the rumor originators.

    Ring 1 is the rumor seeds' direct out-neighborhood; each ring is
    shuffled independently, and further BFS rings extend the pool only
    when needed.

    Args:
        rng: stream for the random choice within rings (the paper draws
            Proximity's protectors randomly).
    """

    name = "Proximity"

    def __init__(self, rng: Optional[RngStream] = None) -> None:
        self.rng = rng or RngStream(name="proximity")

    def _rings(self, context: SelectionContext) -> List[List[Node]]:
        rings: List[List[Node]] = []
        for depth, layer in enumerate(
            bfs_layers(context.graph, context.rumor_seeds)
        ):
            if depth == 0:
                continue  # the seeds themselves
            ring = [node for node in layer if context.eligible(node)]
            if ring:
                rings.append(ring)
        return rings

    def _ordered_pool(self, context: SelectionContext) -> List[Node]:
        pool: List[Node] = []
        for ring_index, ring in enumerate(self._rings(context)):
            shuffled = list(ring)
            self.rng.fork("ring", ring_index).shuffle(shuffled)
            pool.extend(shuffled)
        return pool

    def select(
        self, context: SelectionContext, budget: Optional[int] = None
    ) -> List[Node]:
        budget = self._check_budget(budget)
        pool = self._ordered_pool(context)
        if budget is not None:
            return pool[:budget]
        return minimal_covering_prefix(context, pool)

    def __repr__(self) -> str:
        return f"ProximitySelector(rng={self.rng!r})"


class KCoreSelector(ProtectorSelector):
    """Protectors in decreasing core-number order (degeneracy centrality).

    Core number is a popular influence proxy (densely embedded nodes keep
    spreading even as the periphery thins out); included as an additional
    topology baseline alongside MaxDegree. Ties break by out-degree, then
    insertion order.
    """

    name = "KCore"

    def select(
        self, context: SelectionContext, budget: Optional[int] = None
    ) -> List[Node]:
        from repro.graph.kcore import core_numbers

        budget = self._check_budget(budget)
        graph = context.graph
        cores = core_numbers(graph)
        order = {node: position for position, node in enumerate(graph.nodes())}
        ranked = [node for node in graph.nodes() if context.eligible(node)]
        ranked.sort(
            key=lambda node: (-cores[node], -graph.out_degree(node), order[node])
        )
        if budget is not None:
            return ranked[:budget]
        return minimal_covering_prefix(context, ranked)


class RandomSelector(ProtectorSelector):
    """Uniformly random eligible protectors (the paper's excluded floor)."""

    name = "Random"

    def __init__(self, rng: Optional[RngStream] = None) -> None:
        self.rng = rng or RngStream(name="random-selector")

    def select(
        self, context: SelectionContext, budget: Optional[int] = None
    ) -> List[Node]:
        budget = self._check_budget(budget)
        candidates = [node for node in context.graph.nodes() if context.eligible(node)]
        self.rng.fork("order").shuffle(candidates)
        if budget is not None:
            return candidates[:budget]
        return minimal_covering_prefix(context, candidates)

    def __repr__(self) -> str:
        return f"RandomSelector(rng={self.rng!r})"
