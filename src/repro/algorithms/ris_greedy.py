"""Sketch-greedy protector selection over an RR-set store.

Where Algorithm 1 evaluates σ̂ by simulation for every candidate in
every round, :class:`RISGreedySelector` reduces selection to **weighted
max coverage** over the RR sets held in a
:class:`repro.sketch.store.SketchStore`: picking the node contained in
the most not-yet-covered sets maximises the σ̂ marginal gain exactly, so
the classic lazy-greedy (CELF-style) heap applies with *exact* stale
bounds — coverage counts are integers, not noisy estimates. The
(1 - 1/e)-approximation of max coverage composes with the sketch
estimator's (ε, δ) concentration the same way as in the RIS influence
-maximisation literature (Tong et al., arXiv:1701.02368), giving
(1 - 1/e - ε)-quality seed sets at a fraction of the simulation cost.

Both problem flavours are supported through the usual ``budget``
convention:

* ``budget=k`` — LCRB with a fixed protector count (the figures' mode).
* ``budget=None`` — keep covering until the estimated protected
  fraction of bridge ends reaches ``alpha`` (LCRB-P; with DOAM
  semantics and ``alpha=1.0`` this is LCRB-D's full cover).

Sample-size control: the selector greedifies the current store, then
asks the (ε, δ) stopping rule whether the chosen set's σ̂ is resolved
tightly enough; if not, the store doubles and greedy reruns — the
IMM-style loop, with all sketches reused across iterations *and* across
``select`` calls on the same context (the store is cached per context).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algorithms.base import ProtectorSelector, SelectionContext
from repro.diffusion.base import DEFAULT_MAX_HOPS
from repro.graph.digraph import Node
from repro.obs.registry import metrics
from repro.rng import RngStream
from repro.sketch.coverage import max_coverage, protected_fraction
from repro.sketch.rrset import sampler_for
from repro.sketch.store import SketchStore
from repro.utils.validation import check_fraction, check_positive

__all__ = ["RISGreedySelector"]


class RISGreedySelector(ProtectorSelector):
    """Lazy-greedy max coverage over RR-set sketches.

    Args:
        semantics: ``"doam"`` (default; LCRB-D's deterministic model) or
            ``"opoao"``.
        epsilon: relative-precision target of the stopping rule.
        delta: confidence parameter of the stopping rule.
        steps: diffusion horizon per world (paper: 31).
        alpha: protection level for the budget-free mode, in (0, 1].
        initial_worlds: sketch sample size before the first greedy pass
            (deterministic semantics need exactly one world).
        max_worlds: hard cap on adaptive doubling.
        rng: base stream for world sampling.
        verify_backend: optional kernel backend name; when set, every
            ``select`` cross-checks the picked set with an independent
            batched simulation (:class:`~repro.kernels.sigma.\
BatchedSigmaEvaluator`) and records the achieved protected fraction in
            :attr:`last_kernel_protected_fraction` and the
            ``ris.kernel_protected_fraction`` gauge.
        verify_runs: coupled worlds for the verification estimate.
        workers: worker request for parallel RR-set sampling (``None``/
            ``1`` serial, ``0`` one per CPU); forwarded to the
            :class:`~repro.sketch.store.SketchStore` so every doubling
            round fans out. Selections are bit-identical regardless.
        chunk_timeout: per-chunk pool deadline in seconds for parallel
            sampling (``None`` waits forever; see ``docs/parallel.md``).
        chunk_retries: deterministic resubmission budget per failed
            chunk (``None`` uses the executor default).
        checkpoint: a path or :class:`~repro.exec.checkpoint.\
            CheckpointStore`; when set, the store's sampled worlds are
            saved after every growth round, and a matching checkpoint
            restores them — worlds are pure functions of their index, so
            the restored arrays are bit-identical to resampling.
        executor: a shared :class:`~repro.exec.pool.ParallelExecutor`
            handed down to every sketch store so doubling rounds reuse
            one warm pool; ``None`` lets each store own its executor.
        backend: sketch-kernel backend for RR-set sampling (``"numpy"``,
            ``"python"``, or ``None``/``"auto"`` for the fastest
            available) — forwarded to the store; bit-identical either
            way (see :mod:`repro.sketch.kernels`).
    """

    name = "RIS-Greedy"

    def __init__(
        self,
        semantics: str = "doam",
        epsilon: float = 0.1,
        delta: float = 0.05,
        steps: int = DEFAULT_MAX_HOPS,
        alpha: float = 0.8,
        initial_worlds: int = 64,
        max_worlds: int = 4096,
        rng: Optional[RngStream] = None,
        verify_backend: Optional[str] = None,
        verify_runs: int = 64,
        workers: Optional[int] = None,
        chunk_timeout: Optional[float] = None,
        chunk_retries: Optional[int] = None,
        checkpoint=None,
        executor=None,
        backend: Optional[str] = None,
    ) -> None:
        self.semantics = semantics
        self.epsilon = check_fraction(epsilon, "epsilon", exclusive=True)
        self.delta = check_fraction(delta, "delta", exclusive=True)
        self.steps = int(check_positive(steps, "steps"))
        self.alpha = check_fraction(alpha, "alpha")
        self.initial_worlds = int(check_positive(initial_worlds, "initial_worlds"))
        self.max_worlds = int(check_positive(max_worlds, "max_worlds"))
        self.rng = rng or RngStream(name="ris-greedy")
        self.verify_backend = verify_backend
        self.verify_runs = int(check_positive(verify_runs, "verify_runs"))
        self.workers = workers
        self.chunk_timeout = chunk_timeout
        self.chunk_retries = chunk_retries
        self.checkpoint = checkpoint
        self.executor = executor
        self.backend = backend
        #: worlds held by the store after the most recent select() call.
        self.last_worlds = 0
        #: protected fraction the kernel verification measured for the
        #: most recent select() call (None when verification is off).
        self.last_kernel_protected_fraction: Optional[float] = None
        #: per-context sketch cache: id(context) -> (context, store).
        self._stores: Dict[int, Tuple[SelectionContext, SketchStore]] = {}

    # -- store management --------------------------------------------------------

    def make_store(self, context: SelectionContext) -> SketchStore:
        """The cached store for ``context`` (created on first use).

        Sketches depend only on the instance (graph, rumor seeds, bridge
        ends) — never on budgets or previous picks — so repeated
        ``select`` calls on one context reuse every sampled world.
        """
        key = id(context)
        cached = self._stores.get(key)
        if cached is not None and cached[0] is context:
            return cached[1]
        sampler = sampler_for(
            self.semantics, context, steps=self.steps, rng=self.rng.fork("worlds")
        )
        store = SketchStore(
            sampler,
            workers=self.workers,
            chunk_timeout=self.chunk_timeout,
            chunk_retries=self.chunk_retries,
            executor=self.executor,
            backend=self.backend,
        )
        self._stores[key] = (context, store)
        return store

    # -- checkpointing ----------------------------------------------------------

    def _checkpoint_key(self, context: SelectionContext) -> str:
        """Run-key fingerprint for sketch checkpoints.

        Excludes budget, alpha, and the (ε, δ) precision targets: worlds
        are pure functions of their index, so any run over the same
        instance and sampling configuration shares the sampled prefix.
        """
        from repro.exec.checkpoint import run_key

        return run_key(
            kind="sketch",
            semantics=self.semantics,
            steps=self.steps,
            seed=self.rng.seed,
            nodes=context.indexed.node_count,
            edges=context.indexed.edge_count,
            rumors=sorted(context.rumor_seed_ids()),
            ends=sorted(context.bridge_end_ids()),
        )

    def _restore_store(self, ckpt, key: str, store: SketchStore) -> None:
        if store.worlds:  # cached store already holds sampled worlds
            return
        entry = ckpt.load("sketch", key)
        if entry is None:
            return
        store.load_state(entry["state"])
        metrics().inc("exec.resumed_rounds", int(entry["rounds"]))

    @staticmethod
    def _save_store(ckpt, key: str, store: SketchStore) -> None:
        ckpt.save("sketch", key, store.state_dict(), rounds=store.worlds)

    # -- the algorithm -----------------------------------------------------------

    def select(
        self, context: SelectionContext, budget: Optional[int] = None
    ) -> List[Node]:
        budget = self._check_budget(budget)
        if budget == 0 or not context.bridge_ends:
            return []
        from repro.exec.checkpoint import as_store

        store = self.make_store(context)
        ckpt = as_store(self.checkpoint)
        key = "" if ckpt is None else self._checkpoint_key(context)
        if ckpt is not None:
            self._restore_store(ckpt, key, store)
        store.ensure_worlds(self.initial_worlds)
        if ckpt is not None:
            self._save_store(ckpt, key, store)
        while True:
            picked = self._max_coverage(store, context, budget)
            if not store.sampler.stochastic:
                break
            if store.precision_ok(picked, self.epsilon, self.delta):
                break
            if store.worlds >= self.max_worlds:
                break
            store.ensure_worlds(min(self.max_worlds, 2 * store.worlds))
            if ckpt is not None:
                self._save_store(ckpt, key, store)
        self.last_worlds = store.worlds
        labels = context.indexed.labels
        chosen = [labels[node] for node in picked]
        if self.verify_backend is not None:
            self._verify(context, chosen)
        return chosen

    def _verify(self, context: SelectionContext, chosen: List[Node]) -> None:
        """Cross-check the sketch pick with an independent kernel race."""
        from repro.diffusion.doam import DOAMModel
        from repro.diffusion.opoao import OPOAOModel
        from repro.kernels.sigma import BatchedSigmaEvaluator

        model = DOAMModel() if self.semantics == "doam" else OPOAOModel()
        evaluator = BatchedSigmaEvaluator(
            context,
            model=model,
            runs=self.verify_runs,
            max_hops=self.steps,
            rng=self.rng.fork("verify"),
            backend=self.verify_backend,
        )
        fraction = evaluator.protected_fraction(chosen)
        self.last_kernel_protected_fraction = fraction
        registry = metrics()
        if registry.enabled:
            registry.set_gauge("ris.kernel_protected_fraction", fraction)

    def _protected_fraction(self, store: SketchStore, covered_total: int,
                            end_count: int) -> float:
        return protected_fraction(store, covered_total, end_count)

    def _max_coverage(
        self,
        store: SketchStore,
        context: SelectionContext,
        budget: Optional[int],
    ) -> List[int]:
        """One lazy-greedy pass over the store's current sets."""
        return max_coverage(
            store,
            budget=budget,
            excluded=context.rumor_seed_ids(),
            alpha=self.alpha,
            end_count=len(context.bridge_end_ids()),
        )

    def __repr__(self) -> str:
        return (
            f"RISGreedySelector(semantics={self.semantics!r}, "
            f"epsilon={self.epsilon}, delta={self.delta}, alpha={self.alpha})"
        )
