"""Rumor-source detection (the paper's closing future-work direction).

Section VII: "Another direction is looking into the problem of locating
rumor originators since in many real world situations, it is hard to
quickly detect rumors in the first place." This module implements the
three classical estimators over an observed infected snapshot:

* :func:`distance_center` — the infected node minimising the *sum* of
  hop distances to all other infected nodes.
* :func:`jordan_center` — the infected node minimising the *maximum*
  hop distance (eccentricity); the optimal estimator under SI spreading
  with sub-exponential growth.
* :func:`rumor_centrality` — Shah & Zaman's maximum-likelihood estimator
  on trees, applied to the infected subgraph's BFS tree per candidate
  (the standard general-graph heuristic).

All estimators work on the *infected subgraph* viewed undirected (an
infection can be traced along either edge direction when reconstructing
history) and return candidates ranked best-first.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import SelectionError
from repro.graph.digraph import DiGraph, Node

__all__ = [
    "distance_center",
    "jordan_center",
    "rumor_centrality",
    "estimate_sources",
]


def _infected_adjacency(
    graph: DiGraph, infected: Iterable[Node]
) -> Dict[Node, List[Node]]:
    """Undirected adjacency restricted to the infected set."""
    inside: Set[Node] = set(infected)
    if not inside:
        raise SelectionError("infected set must not be empty")
    for node in inside:
        if node not in graph:
            raise SelectionError(f"infected node {node!r} is not in the graph")
    adjacency: Dict[Node, List[Node]] = {node: [] for node in inside}
    for node in inside:
        neighbors: Set[Node] = set()
        for other in graph.successors(node):
            if other in inside:
                neighbors.add(other)
        for other in graph.predecessors(node):
            if other in inside:
                neighbors.add(other)
        adjacency[node] = sorted(neighbors, key=repr)
    return adjacency


def _bfs_distances(
    adjacency: Dict[Node, List[Node]], source: Node
) -> Dict[Node, int]:
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def _ranked_by_score(
    scores: Dict[Node, float], reverse: bool = False
) -> List[Tuple[Node, float]]:
    return sorted(
        scores.items(), key=lambda kv: ((-kv[1] if reverse else kv[1]), repr(kv[0]))
    )


def distance_center(graph: DiGraph, infected: Iterable[Node]) -> List[Tuple[Node, float]]:
    """Rank infected nodes by total hop distance to the rest (ascending).

    Unreachable infected pairs (disconnected snapshot) contribute a large
    penalty so connected candidates always rank ahead.
    """
    adjacency = _infected_adjacency(graph, infected)
    n = len(adjacency)
    penalty = n * n
    scores: Dict[Node, float] = {}
    for node in adjacency:
        distances = _bfs_distances(adjacency, node)
        missing = n - len(distances)
        scores[node] = sum(distances.values()) + missing * penalty
    return _ranked_by_score(scores)


def jordan_center(graph: DiGraph, infected: Iterable[Node]) -> List[Tuple[Node, float]]:
    """Rank infected nodes by eccentricity within the snapshot (ascending)."""
    adjacency = _infected_adjacency(graph, infected)
    n = len(adjacency)
    penalty = n * n
    scores: Dict[Node, float] = {}
    for node in adjacency:
        distances = _bfs_distances(adjacency, node)
        eccentricity = max(distances.values()) if len(distances) > 1 else 0
        missing = n - len(distances)
        scores[node] = eccentricity + missing * penalty
    return _ranked_by_score(scores)


def _bfs_tree_children(
    adjacency: Dict[Node, List[Node]], root: Node
) -> Dict[Node, List[Node]]:
    children: Dict[Node, List[Node]] = {root: []}
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if neighbor not in children:
                children[neighbor] = []
                children[node].append(neighbor)
                queue.append(neighbor)
    return children


def rumor_centrality(
    graph: DiGraph, infected: Iterable[Node]
) -> List[Tuple[Node, float]]:
    """Rank infected nodes by Shah-Zaman rumor centrality (descending).

    On a tree, ``R(v) = N! / prod_u T_u`` where ``T_u`` is the size of the
    subtree rooted at ``u`` when the tree hangs from ``v``; the node with
    the largest centrality is the maximum-likelihood source. On general
    graphs each candidate is scored on its own BFS tree of the infected
    subgraph. Scores are returned as log-centralities for numeric safety.
    """
    adjacency = _infected_adjacency(graph, infected)
    n = len(adjacency)
    log_n_factorial = math.lgamma(n + 1)
    scores: Dict[Node, float] = {}
    for root in adjacency:
        children = _bfs_tree_children(adjacency, root)
        reached = len(children)
        # Subtree sizes via reverse-BFS-order accumulation.
        order: List[Node] = []
        queue = deque([root])
        seen = {root}
        while queue:
            node = queue.popleft()
            order.append(node)
            for child in children[node]:
                if child not in seen:
                    seen.add(child)
                    queue.append(child)
        subtree = {node: 1 for node in children}
        for node in reversed(order):
            for child in children[node]:
                subtree[node] += subtree[child]
        log_score = log_n_factorial - sum(
            math.log(subtree[node]) for node in children
        )
        # Disconnected candidates (tree misses nodes) are heavily penalised.
        log_score -= (n - reached) * n
        scores[root] = log_score
    return _ranked_by_score(scores, reverse=True)


_METHODS = {
    "distance": distance_center,
    "jordan": jordan_center,
    "rumor": rumor_centrality,
}


def estimate_sources(
    graph: DiGraph,
    infected: Iterable[Node],
    method: str = "jordan",
    k: int = 1,
) -> List[Node]:
    """Return the ``k`` most likely rumor originators of a snapshot.

    Args:
        graph: the social network.
        infected: the observed infected nodes.
        method: ``"jordan"``, ``"distance"``, or ``"rumor"``.
        k: number of candidates to return, best first.
    """
    if method not in _METHODS:
        known = ", ".join(sorted(_METHODS))
        raise SelectionError(f"unknown method {method!r}; known: {known}")
    if k < 1:
        raise SelectionError(f"k must be >= 1, got {k}")
    ranked = _METHODS[method](graph, list(infected))
    return [node for node, _ in ranked[:k]]
