"""Edge-timestamp machinery from the submodularity proof (Section V.A.1).

The paper proves OPOAO submodularity by materialising each random run as a
pair of *timestamped random graphs* ``G_R`` and ``G_P``: every time an
active node ``u`` chooses a target ``w`` at step ``t``, the edge ``(u, w)``
receives a timestamp ``t_s`` for each seed ``s`` whose cascade has already
reached ``u``; only the **smallest** timestamp per (edge, seed) is kept
(Fig. 1(b)'s simplification). The arrival time of seed ``s`` at a node is
then the smallest timestamp labelled ``s`` on its in-edges (Lemma 1), and a
bridge end is protected exactly when some protector timestamp on its
in-edges is no larger than the smallest rumor timestamp (Lemma 2).

This module reifies that construction so tests can reproduce the paper's
Fig. 1 worked example exactly (via a scripted chooser) and so the library
offers a second, proof-faithful estimator of the protector influence
``σ(A)`` to cross-check the direct simulator.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import SeedError
from repro.graph.compact import IndexedDiGraph
from repro.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["CascadeRecord", "record_cascade", "protected_by_timestamps"]

#: chooser(node, neighbors, step) -> chosen neighbor; ``None`` = skip turn.
Chooser = Callable[[int, Sequence[int], int], Optional[int]]


class CascadeRecord:
    """Timestamped random graph of one cascade's OPOAO selection process.

    Attributes:
        edge_timestamps: ``(tail, head) -> {seed: smallest step}`` — the
            preserved timestamps of Fig. 1(b).
        arrival: ``node -> {seed: earliest arrival step}``; seeds arrive at
            themselves at step 0.
        steps: number of selection steps executed.
    """

    __slots__ = ("edge_timestamps", "arrival", "steps")

    def __init__(self) -> None:
        self.edge_timestamps: Dict[Tuple[int, int], Dict[int, int]] = {}
        self.arrival: Dict[int, Dict[int, int]] = {}
        self.steps = 0

    def reached(self, node: int) -> bool:
        """True if any seed's cascade reached ``node``."""
        return node in self.arrival

    def earliest_arrival(self, node: int) -> Optional[int]:
        """Smallest arrival step at ``node`` over all seeds, or ``None``."""
        times = self.arrival.get(node)
        return min(times.values()) if times else None

    def min_in_timestamp(self, node: int, in_neighbors: Iterable[int]) -> Optional[int]:
        """Smallest preserved timestamp on ``node``'s in-edges (Lemma 1/2)."""
        best: Optional[int] = None
        for tail in in_neighbors:
            stamps = self.edge_timestamps.get((tail, node))
            if not stamps:
                continue
            smallest = min(stamps.values())
            if best is None or smallest < best:
                best = smallest
        return best

    def __repr__(self) -> str:
        return (
            f"CascadeRecord(edges={len(self.edge_timestamps)}, "
            f"reached={len(self.arrival)}, steps={self.steps})"
        )


def record_cascade(
    graph: IndexedDiGraph,
    seeds: Iterable[int],
    steps: int,
    rng: Optional[RngStream] = None,
    chooser: Optional[Chooser] = None,
) -> CascadeRecord:
    """Run one cascade's selection process, recording timestamps.

    The process follows Section III.A for a *single* cascade (the proof
    builds ``G_R`` and ``G_P`` separately): at every step each reached node
    picks one out-neighbor — uniformly via ``rng``, or via the scripted
    ``chooser`` (used by tests to replay Fig. 1 exactly).

    Args:
        graph: indexed graph.
        seeds: cascade originators (node ids).
        steps: number of selection steps to run.
        rng: random stream (required unless ``chooser`` is given).
        chooser: scripted target choice; returning ``None`` skips the
            node's turn that step.

    Returns:
        The populated :class:`CascadeRecord`.
    """
    check_positive(steps, "steps")
    seed_list = sorted(set(seeds))
    if not seed_list:
        raise SeedError("cascade needs at least one seed")
    for seed in seed_list:
        if not 0 <= seed < graph.node_count:
            raise SeedError(f"seed {seed!r} is not a node id")
    if chooser is None:
        if rng is None:
            raise ValueError("record_cascade needs an rng or a chooser")

        def chooser(node: int, neighbors: Sequence[int], _step: int) -> Optional[int]:
            return neighbors[rng.randrange(len(neighbors))]

    record = CascadeRecord()
    for seed in seed_list:
        record.arrival[seed] = {seed: 0}

    for step in range(1, steps + 1):
        record.steps = step
        # Snapshot: only nodes reached before this step choose this step.
        reached_now: List[Tuple[int, Dict[int, int]]] = [
            (node, dict(times)) for node, times in sorted(record.arrival.items())
        ]
        for node, times in reached_now:
            neighbors = graph.out[node]
            if not neighbors:
                continue
            if min(times.values()) >= step:
                continue  # activated this very step; chooses from the next one
            target = chooser(node, neighbors, step)
            if target is None:
                continue
            if target not in neighbors:
                raise ValueError(
                    f"chooser picked {target!r}, not an out-neighbor of {node!r}"
                )
            stamps = record.edge_timestamps.setdefault((node, target), {})
            target_arrival = record.arrival.setdefault(target, {})
            for seed, seed_arrival in times.items():
                if seed_arrival >= step:
                    continue  # this seed's influence reached `node` too late
                if seed not in stamps or step < stamps[seed]:
                    stamps[seed] = step
                if seed not in target_arrival or step < target_arrival[seed]:
                    target_arrival[seed] = step
    return record


def protected_by_timestamps(
    rumor_record: CascadeRecord,
    protector_record: CascadeRecord,
    graph: IndexedDiGraph,
    candidates: Iterable[int],
) -> Set[int]:
    """Apply Lemma 2 to decide which candidate nodes end up protected.

    A node ``v`` is protected when it is reached in ``G_P`` with some
    protector timestamp on an in-edge **no larger than** the smallest rumor
    timestamp on its in-edges (P wins ties), per Lemma 2. Nodes never
    reached by the rumor are not "protected" — they were never at risk.

    Args:
        rumor_record: ``G_R`` from :func:`record_cascade`.
        protector_record: ``G_P`` from :func:`record_cascade`.
        graph: the graph both records were built on.
        candidates: nodes to classify (typically the bridge ends).

    Returns:
        The subset of ``candidates`` that the protector cascade saves.
    """
    saved: Set[int] = set()
    for node in candidates:
        rumor_stamp = rumor_record.min_in_timestamp(node, graph.inn[node])
        if rumor_stamp is None:
            continue  # rumor never arrives; nothing to save
        protector_stamp = protector_record.min_in_timestamp(node, graph.inn[node])
        if protector_stamp is not None and protector_stamp <= rumor_stamp:
            saved.add(node)
    return saved
