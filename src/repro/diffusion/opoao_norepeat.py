"""OPOAO without repeat selection (mechanism ablation).

Section III.A attributes OPOAO's slowness to "the existence of repeat
selection": an active node re-samples uniformly among *all* out-neighbors
every step, wasting steps on already-active targets. This variant gives
each node memory — it samples uniformly among out-neighbors it has not
chosen before and falls silent once every neighbor has been chosen —
isolating exactly how much of the model's slowness the memoryless
re-sampling causes (benchmarked in
``benchmarks/bench_ablation_repeat_selection.py``).

All other mechanics (one target per step, activation next step,
P-priority, progressiveness) match OPOAO.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.diffusion.base import (
    INACTIVE,
    CascadeSet,
    DiffusionModel,
)
from repro.diffusion.trace import HopTrace
from repro.graph.compact import IndexedDiGraph
from repro.rng import RngStream

__all__ = ["OPOAONoRepeatModel"]


class OPOAONoRepeatModel(DiffusionModel):
    """One-Activate-One with per-node memory of previous choices."""

    name = "OPOAO-NoRepeat"
    stochastic = True

    def _spread(
        self,
        graph: IndexedDiGraph,
        states: List[int],
        seeds: CascadeSet,
        trace: HopTrace,
        rng: Optional[RngStream],
        max_hops: int,
    ) -> None:
        assert rng is not None
        out = graph.out
        order = seeds.priority
        # remaining[u]: out-neighbors u has not chosen yet.
        remaining: Dict[int, List[int]] = {}
        active: Set[int] = set()

        def enroll(node: int) -> None:
            choices = list(out[node])
            if choices:
                remaining[node] = choices
                active.add(node)

        for seed in seeds.all_seeds():
            enroll(seed)

        for _hop in range(max_hops):
            if not active:
                break
            targets: List[Set[int]] = [set() for _ in seeds.cascades]
            spent: List[int] = []
            for node in sorted(active):
                choices = remaining[node]
                index = rng.randrange(len(choices))
                target = choices[index]
                # Swap-remove: each neighbor is chosen at most once.
                choices[index] = choices[-1]
                choices.pop()
                if not choices:
                    spent.append(node)
                if states[target] != INACTIVE:
                    continue
                targets[states[node] - 1].add(target)
            for node in spent:
                active.discard(node)
                del remaining[node]
            claimed: Set[int] = set()
            for cascade in order:  # priority resolves conflicts
                targets[cascade] -= claimed
                claimed |= targets[cascade]

            news: List[List[int]] = [sorted(chosen) for chosen in targets]
            if not claimed and not active:
                break
            for cascade, new in enumerate(news):
                state = cascade + 1
                for node in new:
                    states[node] = state
            for new in news:
                for node in new:
                    enroll(node)
            trace.record_cascades(news)
