"""OPOAO without repeat selection (mechanism ablation).

Section III.A attributes OPOAO's slowness to "the existence of repeat
selection": an active node re-samples uniformly among *all* out-neighbors
every step, wasting steps on already-active targets. This variant gives
each node memory — it samples uniformly among out-neighbors it has not
chosen before and falls silent once every neighbor has been chosen —
isolating exactly how much of the model's slowness the memoryless
re-sampling causes (benchmarked in
``benchmarks/bench_ablation_repeat_selection.py``).

All other mechanics (one target per step, activation next step,
P-priority, progressiveness) match OPOAO.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.diffusion.base import (
    INACTIVE,
    INFECTED,
    PROTECTED,
    DiffusionModel,
    SeedSets,
)
from repro.diffusion.trace import HopTrace
from repro.graph.compact import IndexedDiGraph
from repro.rng import RngStream

__all__ = ["OPOAONoRepeatModel"]


class OPOAONoRepeatModel(DiffusionModel):
    """One-Activate-One with per-node memory of previous choices."""

    name = "OPOAO-NoRepeat"
    stochastic = True

    def _spread(
        self,
        graph: IndexedDiGraph,
        states: List[int],
        seeds: SeedSets,
        trace: HopTrace,
        rng: Optional[RngStream],
        max_hops: int,
    ) -> None:
        assert rng is not None
        out = graph.out
        # remaining[u]: out-neighbors u has not chosen yet.
        remaining: Dict[int, List[int]] = {}
        active: Set[int] = set()

        def enroll(node: int) -> None:
            choices = list(out[node])
            if choices:
                remaining[node] = choices
                active.add(node)

        for seed in seeds.rumors | seeds.protectors:
            enroll(seed)

        for _hop in range(max_hops):
            if not active:
                break
            protected_targets: Set[int] = set()
            infected_targets: Set[int] = set()
            spent: List[int] = []
            for node in sorted(active):
                choices = remaining[node]
                index = rng.randrange(len(choices))
                target = choices[index]
                # Swap-remove: each neighbor is chosen at most once.
                choices[index] = choices[-1]
                choices.pop()
                if not choices:
                    spent.append(node)
                if states[target] != INACTIVE:
                    continue
                if states[node] == PROTECTED:
                    protected_targets.add(target)
                else:
                    infected_targets.add(target)
            for node in spent:
                active.discard(node)
                del remaining[node]
            infected_targets -= protected_targets  # P-priority

            new_protected = sorted(protected_targets)
            new_infected = sorted(infected_targets)
            if not new_protected and not new_infected and not active:
                break
            for node in new_protected:
                states[node] = PROTECTED
            for node in new_infected:
                states[node] = INFECTED
            for node in new_protected:
                enroll(node)
            for node in new_infected:
                enroll(node)
            trace.record(new_infected, new_protected)
