"""Competitive Independent Cascade (extension model).

The paper's related work ([14] Budak et al., [15] Bharathi et al.) studies
rumor blocking under extensions of the Independent Cascade model; this
module provides that substrate so the library's algorithms can be compared
across models (the paper's Section VII suggests studying LCRB "under other
influence diffusion models").

Mechanics:

* A newly active node ``u`` gets exactly one chance, the step after its
  activation, to activate **each** currently inactive out-neighbor ``v``,
  succeeding independently with probability ``p`` (uniform) — the classic
  IC trial.
* All cascades run simultaneously; if a node is successfully activated by
  several in the same step, the earliest cascade in the priority order
  wins. The default ``positives-first`` order is the paper's common
  property 2 (**P wins**) for K=2.
* Progressive activation.

RNG consumption order is part of the engine's bit-identity contract:
fronts run their trials in priority order, and a trial is only drawn for
a neighbor that is inactive and not already claimed by an
earlier-priority cascade this hop — exactly the pre-refactor two-cascade
sequence when K=2.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.diffusion.base import (
    INACTIVE,
    CascadeSet,
    DiffusionModel,
)
from repro.diffusion.trace import HopTrace
from repro.graph.compact import IndexedDiGraph
from repro.rng import RngStream
from repro.utils.validation import check_probability

__all__ = ["CompetitiveICModel"]


class CompetitiveICModel(DiffusionModel):
    """K-cascade Independent Cascade with priority tie-breaking.

    Args:
        probability: global per-edge activation probability ``p``; pass
            ``None`` to use each edge's weight as its probability (weights
            must then lie in [0, 1] — the weighted-IC convention).
    """

    name = "IC"
    stochastic = True

    def __init__(self, probability: Optional[float] = 0.1) -> None:
        if probability is None:
            self.probability = None
            self.name = "IC-W"
        else:
            self.probability = check_probability(probability, "probability")

    def _spread(
        self,
        graph: IndexedDiGraph,
        states: List[int],
        seeds: CascadeSet,
        trace: HopTrace,
        rng: Optional[RngStream],
        max_hops: int,
    ) -> None:
        assert rng is not None
        out = graph.out
        weights = graph.out_weights
        fixed_p = self.probability

        def edge_probability(node: int, position: int) -> float:
            if fixed_p is not None:
                return fixed_p
            weight = weights[node][position]
            if not 0.0 <= weight <= 1.0:
                raise ValueError(
                    f"weighted IC needs edge weights in [0, 1]; got {weight!r}"
                )
            return weight

        order = seeds.priority
        fronts: List[List[int]] = [sorted(cascade) for cascade in seeds.cascades]

        for _hop in range(max_hops):
            if not any(fronts):
                break
            targets: List[Set[int]] = [set() for _ in fronts]
            claimed: Set[int] = set()
            for cascade in order:
                chosen = targets[cascade]
                for node in fronts[cascade]:
                    for position, neighbor in enumerate(out[node]):
                        if (
                            states[neighbor] == INACTIVE
                            and neighbor not in claimed
                            and rng.random() < edge_probability(node, position)
                        ):
                            chosen.add(neighbor)
                claimed |= chosen

            if not claimed:
                break  # fronts alive but no successful trials left
            news: List[List[int]] = []
            for cascade, chosen in enumerate(targets):
                new = sorted(chosen)
                state = cascade + 1
                for node in new:
                    states[node] = state
                news.append(new)
            trace.record_cascades(news)
            fronts = news

    def __repr__(self) -> str:
        return f"CompetitiveICModel(probability={self.probability})"
