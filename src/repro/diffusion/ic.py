"""Competitive Independent Cascade (extension model).

The paper's related work ([14] Budak et al., [15] Bharathi et al.) studies
rumor blocking under extensions of the Independent Cascade model; this
module provides that substrate so the library's algorithms can be compared
across models (the paper's Section VII suggests studying LCRB "under other
influence diffusion models").

Mechanics:

* A newly active node ``u`` gets exactly one chance, the step after its
  activation, to activate **each** currently inactive out-neighbor ``v``,
  succeeding independently with probability ``p`` (uniform) — the classic
  IC trial.
* Both cascades run simultaneously; if a node is successfully activated by
  both in the same step, **P wins**, matching the paper's common property 2.
* Progressive activation.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.diffusion.base import (
    INACTIVE,
    INFECTED,
    PROTECTED,
    DiffusionModel,
    SeedSets,
)
from repro.diffusion.trace import HopTrace
from repro.graph.compact import IndexedDiGraph
from repro.rng import RngStream
from repro.utils.validation import check_probability

__all__ = ["CompetitiveICModel"]


class CompetitiveICModel(DiffusionModel):
    """Two-cascade Independent Cascade with protector priority.

    Args:
        probability: global per-edge activation probability ``p``; pass
            ``None`` to use each edge's weight as its probability (weights
            must then lie in [0, 1] — the weighted-IC convention).
    """

    name = "IC"
    stochastic = True

    def __init__(self, probability: Optional[float] = 0.1) -> None:
        if probability is None:
            self.probability = None
            self.name = "IC-W"
        else:
            self.probability = check_probability(probability, "probability")

    def _spread(
        self,
        graph: IndexedDiGraph,
        states: List[int],
        seeds: SeedSets,
        trace: HopTrace,
        rng: Optional[RngStream],
        max_hops: int,
    ) -> None:
        assert rng is not None
        out = graph.out
        weights = graph.out_weights
        fixed_p = self.probability

        def edge_probability(node: int, position: int) -> float:
            if fixed_p is not None:
                return fixed_p
            weight = weights[node][position]
            if not 0.0 <= weight <= 1.0:
                raise ValueError(
                    f"weighted IC needs edge weights in [0, 1]; got {weight!r}"
                )
            return weight

        protected_front: List[int] = sorted(seeds.protectors)
        infected_front: List[int] = sorted(seeds.rumors)

        for _hop in range(max_hops):
            if not protected_front and not infected_front:
                break
            protected_targets: Set[int] = set()
            for node in protected_front:
                for position, neighbor in enumerate(out[node]):
                    if states[neighbor] == INACTIVE and rng.random() < edge_probability(
                        node, position
                    ):
                        protected_targets.add(neighbor)
            infected_targets: Set[int] = set()
            for node in infected_front:
                for position, neighbor in enumerate(out[node]):
                    if (
                        states[neighbor] == INACTIVE
                        and neighbor not in protected_targets
                        and rng.random() < edge_probability(node, position)
                    ):
                        infected_targets.add(neighbor)

            if not protected_targets and not infected_targets:
                break  # fronts alive but no successful trials left
            new_protected = sorted(protected_targets)
            new_infected = sorted(infected_targets)
            for node in new_protected:
                states[node] = PROTECTED
            for node in new_infected:
                states[node] = INFECTED
            trace.record(new_infected, new_protected)
            protected_front = new_protected
            infected_front = new_infected

    def __repr__(self) -> str:
        return f"CompetitiveICModel(probability={self.probability})"
