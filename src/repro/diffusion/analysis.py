"""Analytics over infected-per-hop series.

Section VI.B.2 makes two quantitative observations about the OPOAO
figures beyond who-beats-whom:

* "As for the relative increase speed of the number of infected nodes
  (the fraction between newly infected nodes and early existing infected
  nodes) ... it does not increase, i.e., decrease or remain unchanged."
* "after 32 hops, the size of newly infected nodes is quite small for
  these three methods, and even the Noblocking line shows similar
  property."

This module computes those quantities — per-hop growth, relative growth
rate, and the saturation hop — so the benchmarks and tests can assert the
observations instead of eyeballing curves.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ValidationError

__all__ = [
    "newly_infected",
    "relative_growth",
    "is_growth_non_accelerating",
    "saturation_hop",
]


def _check_series(series: Sequence[float]) -> None:
    if len(series) < 1:
        raise ValidationError("series must not be empty")
    for earlier, later in zip(series, series[1:]):
        if later < earlier - 1e-9:
            raise ValidationError("cumulative series must be non-decreasing")


def newly_infected(series: Sequence[float]) -> List[float]:
    """Per-hop increments of a cumulative series (length ``len - 1``)."""
    _check_series(series)
    return [later - earlier for earlier, later in zip(series, series[1:])]


def relative_growth(series: Sequence[float]) -> List[float]:
    """The paper's "relative increase speed": new infections at hop ``t``
    divided by the cumulative count at hop ``t - 1``.

    Hops with a zero cumulative base are skipped (cannot happen after hop
    0 in practice since seeds are counted there).
    """
    _check_series(series)
    rates: List[float] = []
    for hop in range(1, len(series)):
        base = series[hop - 1]
        if base > 0:
            rates.append((series[hop] - base) / base)
    return rates


def is_growth_non_accelerating(
    series: Sequence[float], tolerance: float = 0.05, window: int = 3
) -> bool:
    """Check the paper's claim that relative growth never increases.

    Individual Monte-Carlo hops are noisy, so the check compares a moving
    average of the relative-growth sequence: every windowed mean must be
    at most the previous windowed mean plus ``tolerance``.
    """
    rates = relative_growth(series)
    if len(rates) <= window:
        return True
    means = [
        sum(rates[i : i + window]) / window for i in range(len(rates) - window + 1)
    ]
    return all(b <= a + tolerance for a, b in zip(means, means[1:]))


def saturation_hop(series: Sequence[float], epsilon: float = 0.01) -> int:
    """First hop after which every later increment is below ``epsilon``
    of the final value (the curve has flattened).

    Returns ``len(series) - 1`` if the series never settles.
    """
    _check_series(series)
    if len(series) == 1:
        return 0
    final = series[-1]
    threshold = epsilon * final if final > 0 else epsilon
    increments = newly_infected(series)
    for hop in range(len(increments)):
        if all(increment <= threshold for increment in increments[hop:]):
            return hop  # increments[hop] is the growth from hop -> hop+1
    return len(series) - 1
