"""Parallel Monte-Carlo simulation across processes.

The OPOAO experiments average hundreds of independent replicas; replicas
never communicate, so they parallelise perfectly. This module fans the
replica loop of :class:`~repro.diffusion.simulation.MonteCarloSimulator`
out over the :mod:`repro.exec` execution layer while preserving
**bit-identical results**: replica ``i`` always runs on
``rng.replica(i)`` no matter which worker executes it, workers ship each
replica home as a compact :class:`ReplicaRecord`, and the parent folds
the records into the aggregate **in replica order** — so the resulting
:class:`~repro.diffusion.simulation.SimulationAggregate` is exactly the
one a serial run produces (same means, same Welford variance, tested in
``tests/diffusion/test_parallel.py``).

Deterministic models short-circuit to a single in-process run, exactly as
the serial simulator does.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.diffusion.base import (
    DEFAULT_MAX_HOPS,
    INFECTED,
    PROTECTED,
    CascadeSet,
    DiffusionModel,
)
from repro.diffusion.simulation import MonteCarloSimulator, SimulationAggregate
from repro.exec.pool import ParallelExecutor
from repro.graph.compact import IndexedDiGraph
from repro.obs.registry import metrics
from repro.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["ParallelMonteCarloSimulator", "ReplicaRecord"]


class ReplicaRecord(NamedTuple):
    """One replica's outcome, reduced to the integers aggregation needs.

    Workers ship these instead of full outcome objects: the pickled
    payload stays small and the parent can rebuild serial-identical
    aggregates and bridge-end statistics without re-touching the states.
    """

    #: cumulative infected count at hop 0..max_hops (clamped like the trace).
    infected_series: Tuple[int, ...]
    #: cumulative protected count at hop 0..max_hops.
    protected_series: Tuple[int, ...]
    final_infected: int
    final_protected: int
    #: (infected, protected, untouched) counts over the requested bridge ends.
    end_counts: Tuple[int, int, int]


def record_outcome(outcome, max_hops: int, end_ids: Sequence[int]) -> ReplicaRecord:
    """Reduce one diffusion outcome to its :class:`ReplicaRecord`."""
    trace = outcome.trace
    infected = protected = untouched = 0
    for end in end_ids:
        state = outcome.states[end]
        if state == INFECTED:
            infected += 1
        elif state >= PROTECTED:  # any positive campaign
            protected += 1
        else:
            untouched += 1
    return ReplicaRecord(
        tuple(trace.infected_at(hop) for hop in range(max_hops + 1)),
        tuple(trace.protected_at(hop) for hop in range(max_hops + 1)),
        outcome.infected_count,
        outcome.protected_count,
        (infected, protected, untouched),
    )


def _records_to_state(records: List[ReplicaRecord]) -> dict:
    """JSON-serialisable checkpoint state for a replica-record prefix."""
    return {
        "records": [
            [
                list(record.infected_series),
                list(record.protected_series),
                record.final_infected,
                record.final_protected,
                list(record.end_counts),
            ]
            for record in records
        ]
    }


def _records_from_state(state: dict) -> List[ReplicaRecord]:
    return [
        ReplicaRecord(
            tuple(int(value) for value in row[0]),
            tuple(int(value) for value in row[1]),
            int(row[2]),
            int(row[3]),
            tuple(int(value) for value in row[4]),
        )
        for row in state["records"]
    ]


def _simulate_worker_setup(graph, payload):
    """Pool worker set-up: the shared run state, keyed off the shipped seed."""
    return {
        "model": payload["model"],
        "graph": graph,
        "seeds": payload["seeds"],
        "base": RngStream(payload["seed"], name="parallel-worker"),
        "max_hops": payload["max_hops"],
        "end_ids": payload["end_ids"],
    }


def _simulate_worker_chunk(state, replica_indices) -> List[ReplicaRecord]:
    """Pool worker task: run a chunk of replicas on their index streams."""
    model: DiffusionModel = state["model"]
    records = []
    for replica_index in replica_indices:
        outcome = model.run(
            state["graph"],
            state["seeds"],
            rng=state["base"].replica(replica_index),
            max_hops=state["max_hops"],
        )
        records.append(record_outcome(outcome, state["max_hops"], state["end_ids"]))
    registry = metrics()
    if registry.enabled:
        registry.counter("sim.worlds").add(len(replica_indices))
    return records


class ParallelMonteCarloSimulator:
    """Process-parallel replica runner with serial-identical aggregates.

    Args:
        model: any diffusion model.
        runs: replica count (stochastic models).
        max_hops: horizon per run.
        processes: worker count; default = CPU count, capped at ``runs``.
        share: graph publication mode for the pool (see
            :func:`repro.exec.shm.publish_graph`).
        chunk_timeout: per-chunk pool deadline in seconds (``None``
            waits forever; see ``docs/parallel.md``).
        chunk_retries: deterministic resubmission budget per failed
            chunk (``None`` uses the executor default).
        checkpoint: a path or :class:`~repro.exec.checkpoint.\
            CheckpointStore`; when set, completed replica batches are
            saved and a matching checkpoint resumes after its prefix —
            replica ``i`` always runs on ``rng.replica(i)``, so the
            resumed aggregate is bit-identical to an uninterrupted run.
        checkpoint_every: replicas per checkpointed batch.
        executor: a shared :class:`~repro.exec.pool.ParallelExecutor`
            (its knobs then govern); ``None`` lazily builds a
            simulator-owned one — either way every checkpoint batch of
            every :meth:`simulate` call reuses the same warm pool.

    Note:
        The callback-per-outcome hook of the serial simulator is not
        offered here (outcomes stay in the workers); callers needing
        per-replica data use :meth:`simulate_detailed`, which returns
        the workers' :class:`ReplicaRecord` list in replica order.
    """

    def __init__(
        self,
        model: DiffusionModel,
        runs: int = 200,
        max_hops: int = DEFAULT_MAX_HOPS,
        processes: Optional[int] = None,
        share: str = "auto",
        chunk_timeout: Optional[float] = None,
        chunk_retries: Optional[int] = None,
        checkpoint=None,
        checkpoint_every: int = 64,
        executor: Optional[ParallelExecutor] = None,
    ) -> None:
        self.model = model
        self.runs = int(check_positive(runs, "runs"))
        self.max_hops = int(check_positive(max_hops, "max_hops"))
        if processes is not None:
            processes = int(check_positive(processes, "processes"))
        self.processes = processes
        self.share = share
        self.chunk_timeout = chunk_timeout
        self.chunk_retries = chunk_retries
        self.checkpoint = checkpoint
        self.checkpoint_every = int(
            check_positive(checkpoint_every, "checkpoint_every")
        )
        self._executor = executor

    def simulate(
        self,
        graph: IndexedDiGraph,
        seeds: CascadeSet,
        rng: Optional[RngStream] = None,
    ) -> SimulationAggregate:
        """Run all replicas across the pool and aggregate in replica order."""
        aggregate, _records = self.simulate_detailed(graph, seeds, rng=rng)
        return aggregate

    def simulate_detailed(
        self,
        graph: IndexedDiGraph,
        seeds: CascadeSet,
        rng: Optional[RngStream] = None,
        end_ids: Sequence[int] = (),
    ) -> Tuple[SimulationAggregate, List[ReplicaRecord]]:
        """Like :meth:`simulate`, also returning every replica's record.

        ``end_ids`` names the bridge ends whose final states each record
        classifies (``end_counts``); evaluation uses this to rebuild
        serial-identical bridge statistics without shipping full state
        arrays home.
        """
        end_ids = tuple(end_ids)
        if not self.model.stochastic:
            serial = MonteCarloSimulator(self.model, runs=1, max_hops=self.max_hops)
            records: List[ReplicaRecord] = []

            def collect(outcome) -> None:
                records.append(record_outcome(outcome, self.max_hops, end_ids))

            aggregate = serial.simulate(graph, seeds, rng=rng, on_outcome=collect)
            return aggregate, records
        if rng is None:
            raise ValueError(f"{self.model.name} is stochastic and needs an RngStream")

        registry = metrics()
        if self._executor is None:
            workers: Union[int, str] = (
                self.processes if self.processes is not None else "auto"
            )
            self._executor = ParallelExecutor(
                workers,
                share=self.share,
                timeout=self.chunk_timeout,
                retries=self.chunk_retries,
            )
        executor = self._executor
        payload = {
            "model": self.model,
            "seeds": seeds,
            "seed": rng.seed,
            "max_hops": self.max_hops,
            "end_ids": end_ids,
        }
        from repro.exec.checkpoint import as_store

        ckpt = as_store(self.checkpoint)
        records: List[ReplicaRecord] = []
        key = ""
        if ckpt is not None:
            key = self._checkpoint_key(graph, seeds, rng, end_ids)
            entry = ckpt.load("mc", key)
            if entry is not None:
                # ``runs`` is outside the key on purpose: replica i is a
                # pure function of rng.replica(i), so a shorter run's
                # prefix seeds a longer one (and a longer one truncates).
                records = _records_from_state(entry["state"])[: self.runs]
                if records:
                    registry.inc("exec.resumed_rounds", len(records))
        with registry.timer("time.simulate.parallel"):
            start = len(records)
            while start < self.runs:
                stop = (
                    self.runs
                    if ckpt is None
                    else min(self.runs, start + self.checkpoint_every)
                )
                indices = list(range(start, stop))
                records.extend(executor.map_items(
                    _simulate_worker_setup,
                    _simulate_worker_chunk,
                    payload,
                    indices,
                    graph=graph,
                ))
                start = stop
                if ckpt is not None:
                    ckpt.save(
                        "mc", key, _records_to_state(records), rounds=len(records)
                    )
        aggregate = SimulationAggregate(self.max_hops)
        for record in records:  # replica order -> bit-identical to serial
            aggregate.add_series(
                record.infected_series,
                record.protected_series,
                record.final_infected,
                record.final_protected,
            )
        return aggregate, records

    def _checkpoint_key(self, graph, seeds, rng, end_ids) -> str:
        """Run-key fingerprint for Monte-Carlo checkpoints (sans runs).

        Every cascade seed set and the priority order are part of the key:
        a checkpoint written for a different cascade configuration (or by
        the pre-K-cascade engine, which keyed only rumors/protectors) must
        raise rather than silently seed a foreign resume.
        """
        from repro.exec.checkpoint import run_key

        return run_key(
            kind="mc",
            model=self.model.name,
            seed=rng.seed,
            max_hops=self.max_hops,
            nodes=graph.node_count,
            edges=graph.edge_count,
            cascades=[sorted(cascade) for cascade in seeds.cascades],
            priority=list(seeds.priority),
            ends=list(end_ids),
        )

    def __repr__(self) -> str:
        return (
            f"ParallelMonteCarloSimulator(model={self.model.name}, "
            f"runs={self.runs}, processes={self.processes or 'auto'})"
        )
