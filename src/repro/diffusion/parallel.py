"""Parallel Monte-Carlo simulation across processes.

The OPOAO experiments average hundreds of independent replicas; replicas
never communicate, so they parallelise perfectly. This module fans a
:class:`~repro.diffusion.simulation.MonteCarloSimulator`-equivalent run
out over a :mod:`multiprocessing` pool while preserving **bit-identical
results**: replica ``i`` always runs on ``rng.replica(i)`` no matter which
worker executes it, so serial and parallel runs aggregate exactly the same
outcomes (tested in ``tests/diffusion/test_parallel.py``).

Deterministic models short-circuit to a single in-process run, exactly as
the serial simulator does.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.diffusion.base import (
    DEFAULT_MAX_HOPS,
    DiffusionModel,
    SeedSets,
)
from repro.diffusion.simulation import MonteCarloSimulator, SimulationAggregate
from repro.graph.compact import IndexedDiGraph
from repro.obs.registry import MetricsRegistry, metrics, use_registry
from repro.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["ParallelMonteCarloSimulator"]

# Per-worker simulation state, installed once by the pool initializer.
# Shipping the graph inside every chunk payload pickled it once per chunk;
# the initializer route pickles it once per *worker*, and each chunk
# message shrinks to a list of replica indices.
_WORKER: Dict[str, object] = {}


def _init_worker(
    model: DiffusionModel,
    graph: IndexedDiGraph,
    seeds: SeedSets,
    base_seed: int,
    max_hops: int,
    collect_metrics: bool = False,
) -> None:
    """Pool initializer: stash the shared run state in this worker process."""
    _WORKER["model"] = model
    _WORKER["graph"] = graph
    _WORKER["seeds"] = seeds
    _WORKER["base"] = RngStream(base_seed, name="parallel-worker")
    _WORKER["max_hops"] = max_hops
    _WORKER["collect_metrics"] = collect_metrics


def _run_chunk(
    replica_indices: Sequence[int],
) -> Tuple[SimulationAggregate, Optional[Dict[str, Any]]]:
    """Worker: run a slice of replicas; return (partial aggregate, metrics).

    When the parent simulates under a real registry, each worker
    accumulates into its own :class:`MetricsRegistry` and ships a
    picklable snapshot home — the snapshot-and-merge protocol that keeps
    parallel work counters identical to a serial run's.
    """
    model: DiffusionModel = _WORKER["model"]
    graph: IndexedDiGraph = _WORKER["graph"]
    seeds: SeedSets = _WORKER["seeds"]
    base: RngStream = _WORKER["base"]
    max_hops: int = _WORKER["max_hops"]
    collect: bool = bool(_WORKER.get("collect_metrics", False))
    aggregate = SimulationAggregate(max_hops)

    def run_all() -> None:
        for replica_index in replica_indices:
            outcome = model.run(
                graph, seeds, rng=base.replica(replica_index), max_hops=max_hops
            )
            aggregate.add(outcome)

    if not collect:
        run_all()
        return aggregate, None
    registry = MetricsRegistry()
    with use_registry(registry):
        run_all()
    registry.counter("sim.worlds").add(len(replica_indices))
    return aggregate, registry.snapshot()


class ParallelMonteCarloSimulator:
    """Process-parallel replica runner with serial-identical aggregates.

    Args:
        model: any diffusion model.
        runs: replica count (stochastic models).
        max_hops: horizon per run.
        processes: worker count; default = CPU count, capped at ``runs``.

    Note:
        The callback-per-outcome hook of the serial simulator is not
        offered here (outcomes stay in the workers); use the serial
        simulator when per-run inspection is needed.
    """

    def __init__(
        self,
        model: DiffusionModel,
        runs: int = 200,
        max_hops: int = DEFAULT_MAX_HOPS,
        processes: Optional[int] = None,
    ) -> None:
        self.model = model
        self.runs = int(check_positive(runs, "runs"))
        self.max_hops = int(check_positive(max_hops, "max_hops"))
        if processes is not None:
            processes = int(check_positive(processes, "processes"))
        self.processes = processes

    def _chunks(self, worker_count: int) -> List[List[int]]:
        chunks: List[List[int]] = [[] for _ in range(worker_count)]
        for replica_index in range(self.runs):
            chunks[replica_index % worker_count].append(replica_index)
        return [chunk for chunk in chunks if chunk]

    def simulate(
        self,
        graph: IndexedDiGraph,
        seeds: SeedSets,
        rng: Optional[RngStream] = None,
    ) -> SimulationAggregate:
        """Run all replicas across the pool and merge the aggregates."""
        if not self.model.stochastic:
            serial = MonteCarloSimulator(self.model, runs=1, max_hops=self.max_hops)
            return serial.simulate(graph, seeds, rng=rng)
        if rng is None:
            raise ValueError(f"{self.model.name} is stochastic and needs an RngStream")

        registry = metrics()
        worker_count = self.processes or multiprocessing.cpu_count()
        worker_count = max(1, min(worker_count, self.runs))
        chunks = self._chunks(worker_count)
        init_args = (
            self.model, graph, seeds, rng.seed, self.max_hops, registry.enabled
        )
        with registry.timer("time.simulate.parallel"):
            if worker_count == 1:
                saved = dict(_WORKER)
                try:
                    _init_worker(*init_args)
                    partials = [_run_chunk(chunks[0])]
                finally:
                    _WORKER.clear()
                    _WORKER.update(saved)
            else:
                with multiprocessing.Pool(
                    processes=worker_count, initializer=_init_worker, initargs=init_args
                ) as pool:
                    partials = pool.map(_run_chunk, chunks)

        merged = partials[0][0]
        for partial, _snapshot in partials[1:]:
            merged = merged.merge(partial)
        for _partial, snapshot in partials:
            if snapshot is not None:
                registry.merge_snapshot(snapshot)
        return merged

    def __repr__(self) -> str:
        return (
            f"ParallelMonteCarloSimulator(model={self.model.name}, "
            f"runs={self.runs}, processes={self.processes or 'auto'})"
        )
