"""The Deterministic One-Activate-Many (DOAM) model (Section III.B).

Mechanics:

* When a node first becomes active at step ``t``, **all** of its currently
  inactive out-neighbors become active at ``t + 1``; each node influences
  its neighbors exactly once (only the newly-active front spreads).
* Simultaneous arrival of both cascades at a node: **P wins**.
* Progressive activation; the process is fully deterministic given seeds —
  it is a simultaneous two-source BFS with protector tie-priority, and the
  rumor arrival time at any node equals its BFS distance from the nearest
  rumor seed *unless* the protector front reaches it no later.

The determinism is what makes LCRB-D reducible to Set Cover (Theorem 2):
whether a candidate protector saves a bridge end depends only on hop
distances, not on chance.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.diffusion.base import (
    INACTIVE,
    INFECTED,
    PROTECTED,
    DiffusionModel,
    SeedSets,
)
from repro.diffusion.trace import HopTrace
from repro.graph.compact import IndexedDiGraph
from repro.obs.registry import metrics
from repro.rng import RngStream

__all__ = ["DOAMModel"]


class DOAMModel(DiffusionModel):
    """Deterministic One-Activate-Many competitive diffusion."""

    name = "DOAM"
    stochastic = False

    def _spread(
        self,
        graph: IndexedDiGraph,
        states: List[int],
        seeds: SeedSets,
        trace: HopTrace,
        rng: Optional[RngStream],
        max_hops: int,
    ) -> None:
        out = graph.out
        protected_front: List[int] = sorted(seeds.protectors)
        infected_front: List[int] = sorted(seeds.rumors)

        # Work accounting, guarded per hop so the null-registry cost is
        # one boolean check per hop, not per node/edge.
        registry = metrics()
        track = registry.enabled
        node_visits = 0
        edge_visits = 0

        for _hop in range(max_hops):
            if not protected_front and not infected_front:
                break
            if track:
                node_visits += len(protected_front) + len(infected_front)
                edge_visits += sum(len(out[node]) for node in protected_front)
                edge_visits += sum(len(out[node]) for node in infected_front)
            protected_targets: Set[int] = set()
            for node in protected_front:
                for neighbor in out[node]:
                    if states[neighbor] == INACTIVE:
                        protected_targets.add(neighbor)
            infected_targets: Set[int] = set()
            for node in infected_front:
                for neighbor in out[node]:
                    if states[neighbor] == INACTIVE and neighbor not in protected_targets:
                        infected_targets.add(neighbor)  # P-priority on ties

            if not protected_targets and not infected_targets:
                break  # fronts alive but nothing left to activate
            new_protected = sorted(protected_targets)
            new_infected = sorted(infected_targets)
            for node in new_protected:
                states[node] = PROTECTED
            for node in new_infected:
                states[node] = INFECTED
            trace.record(new_infected, new_protected)
            protected_front = new_protected
            infected_front = new_infected

        if track:
            registry.counter("sim.node_visits").add(node_visits)
            registry.counter("sim.edge_visits").add(edge_visits)
