"""The Deterministic One-Activate-Many (DOAM) model (Section III.B).

Mechanics:

* When a node first becomes active at step ``t``, **all** of its currently
  inactive out-neighbors become active at ``t + 1``; each node influences
  its neighbors exactly once (only the newly-active front spreads).
* Simultaneous arrival of several cascades at a node: the earliest
  cascade in the priority order claims it (**P wins** under the default
  ``positives-first`` order when K=2).
* Progressive activation; the process is fully deterministic given seeds —
  it is a simultaneous multi-source BFS with priority tie-breaking, and
  the rumor arrival time at any node equals its BFS distance from the
  nearest rumor seed *unless* a positive front reaches it no later.

The determinism is what makes LCRB-D reducible to Set Cover (Theorem 2):
whether a candidate protector saves a bridge end depends only on hop
distances, not on chance.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.diffusion.base import (
    INACTIVE,
    CascadeSet,
    DiffusionModel,
)
from repro.diffusion.trace import HopTrace
from repro.graph.compact import IndexedDiGraph
from repro.obs.registry import metrics
from repro.rng import RngStream

__all__ = ["DOAMModel"]


class DOAMModel(DiffusionModel):
    """Deterministic One-Activate-Many competitive diffusion."""

    name = "DOAM"
    stochastic = False

    def _spread(
        self,
        graph: IndexedDiGraph,
        states: List[int],
        seeds: CascadeSet,
        trace: HopTrace,
        rng: Optional[RngStream],
        max_hops: int,
    ) -> None:
        out = graph.out
        order = seeds.priority
        fronts: List[List[int]] = [sorted(cascade) for cascade in seeds.cascades]

        # Work accounting, guarded per hop so the null-registry cost is
        # one boolean check per hop, not per node/edge.
        registry = metrics()
        track = registry.enabled
        node_visits = 0
        edge_visits = 0

        for _hop in range(max_hops):
            if not any(fronts):
                break
            if track:
                node_visits += sum(len(front) for front in fronts)
                edge_visits += sum(
                    len(out[node]) for front in fronts for node in front
                )
            targets: List[Set[int]] = [set() for _ in fronts]
            claimed: Set[int] = set()
            for cascade in order:
                chosen = targets[cascade]
                for node in fronts[cascade]:
                    for neighbor in out[node]:
                        if states[neighbor] == INACTIVE and neighbor not in claimed:
                            chosen.add(neighbor)  # priority claims ties
                claimed |= chosen

            if not claimed:
                break  # fronts alive but nothing left to activate
            news: List[List[int]] = []
            for cascade, chosen in enumerate(targets):
                new = sorted(chosen)
                state = cascade + 1
                for node in new:
                    states[node] = state
                news.append(new)
            trace.record_cascades(news)
            fronts = news

        if track:
            registry.counter("sim.node_visits").add(node_visits)
            registry.counter("sim.edge_visits").add(edge_visits)
