"""Shared diffusion-model infrastructure.

Node states, validated seed sets, the outcome record, and the
:class:`DiffusionModel` base class every model implements. All models run
on an :class:`repro.graph.compact.IndexedDiGraph` (integer node ids) for
speed; higher layers translate labels at the boundary.

The three common properties of Section III are enforced here and tested
property-based:

1. both cascades start at step 0 (seeds are hop 0 of the trace);
2. when R and P reach a node in the same step, P wins;
3. activation is progressive — a state array entry only ever moves
   ``INACTIVE -> {INFECTED, PROTECTED}`` and then never changes.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Iterable, List, Optional, Sequence

from repro.errors import SeedError
from repro.graph.compact import IndexedDiGraph
from repro.diffusion.trace import HopTrace
from repro.obs.registry import metrics
from repro.rng import RngStream
from repro.utils.validation import check_positive

__all__ = [
    "INACTIVE",
    "INFECTED",
    "PROTECTED",
    "SeedSets",
    "DiffusionOutcome",
    "DiffusionModel",
    "DEFAULT_MAX_HOPS",
]

#: Node states. Small ints rather than an Enum: the simulators index state
#: arrays millions of times, and int compares are measurably faster.
INACTIVE = 0
INFECTED = 1
PROTECTED = 2

#: The paper runs OPOAO comparisons for 31 hops (Section VI.B.2).
DEFAULT_MAX_HOPS = 31


class SeedSets:
    """Validated pair of disjoint seed sets (rumors ``S_R``, protectors ``S_P``).

    Section III requires the two initial sets to be disjoint; rumor seeds
    must be non-empty (there is no rumor-blocking problem without a rumor),
    while protector seeds may be empty (the paper's NoBlocking baseline).
    """

    __slots__ = ("rumors", "protectors")

    def __init__(self, rumors: Iterable[int], protectors: Iterable[int] = ()) -> None:
        self.rumors: FrozenSet[int] = frozenset(rumors)
        self.protectors: FrozenSet[int] = frozenset(protectors)
        if not self.rumors:
            raise SeedError("rumor seed set must not be empty")
        overlap = self.rumors & self.protectors
        if overlap:
            raise SeedError(
                f"seed sets must be disjoint; both contain {sorted(overlap)[:5]}"
            )

    def validate_against(self, graph: IndexedDiGraph) -> None:
        """Check every seed id is a valid node of ``graph``."""
        n = graph.node_count
        for seed in self.rumors | self.protectors:
            if not isinstance(seed, int) or isinstance(seed, bool) or not 0 <= seed < n:
                raise SeedError(f"seed {seed!r} is not a node id in [0, {n})")

    def __repr__(self) -> str:
        return f"SeedSets(|R|={len(self.rumors)}, |P|={len(self.protectors)})"


class DiffusionOutcome:
    """Final state of one diffusion run.

    Attributes:
        states: per-node final state (INACTIVE/INFECTED/PROTECTED), indexed
            by node id.
        trace: the hop-by-hop :class:`~repro.diffusion.trace.HopTrace`.
    """

    __slots__ = ("states", "trace")

    def __init__(self, states: Sequence[int], trace: HopTrace) -> None:
        self.states: List[int] = list(states)
        self.trace = trace

    @property
    def infected_count(self) -> int:
        """Total infected nodes (seeds included)."""
        return sum(1 for state in self.states if state == INFECTED)

    @property
    def protected_count(self) -> int:
        """Total protected nodes (seeds included)."""
        return sum(1 for state in self.states if state == PROTECTED)

    def infected_ids(self) -> List[int]:
        """Ids of infected nodes."""
        return [node for node, state in enumerate(self.states) if state == INFECTED]

    def protected_ids(self) -> List[int]:
        """Ids of protected nodes."""
        return [node for node, state in enumerate(self.states) if state == PROTECTED]

    def state_of(self, node_id: int) -> int:
        """Final state of one node."""
        return self.states[node_id]

    def __repr__(self) -> str:
        return (
            f"DiffusionOutcome(infected={self.infected_count}, "
            f"protected={self.protected_count}, hops={self.trace.hops})"
        )


class DiffusionModel(abc.ABC):
    """Base class for two-cascade diffusion models.

    Subclasses implement :meth:`_spread`, receiving pre-validated inputs
    and a pre-seeded state array; the template method :meth:`run` handles
    validation and seeding so every model enforces the common Section III
    properties identically.
    """

    #: human-readable name used in reports.
    name: str = "diffusion"

    #: whether the model consumes randomness (DOAM does not).
    stochastic: bool = True

    def run(
        self,
        graph: IndexedDiGraph,
        seeds: SeedSets,
        rng: Optional[RngStream] = None,
        max_hops: int = DEFAULT_MAX_HOPS,
    ) -> DiffusionOutcome:
        """Run one realisation of the model.

        Args:
            graph: indexed graph to diffuse on.
            seeds: validated (disjoint) seed sets, as node ids.
            rng: random stream; required for stochastic models.
            max_hops: horizon; diffusion also stops early once no further
                activation is possible.

        Returns:
            The final :class:`DiffusionOutcome`.
        """
        check_positive(max_hops, "max_hops")
        seeds.validate_against(graph)
        if self.stochastic and rng is None:
            raise ValueError(f"{self.name} is stochastic and needs an RngStream")
        states = [INACTIVE] * graph.node_count
        for node in seeds.protectors:  # P seeded first: P-priority at hop 0 too
            states[node] = PROTECTED
        for node in seeds.rumors:
            states[node] = INFECTED
        trace = HopTrace()
        trace.record(sorted(seeds.rumors), sorted(seeds.protectors))
        self._spread(graph, states, seeds, trace, rng, max_hops)
        outcome = DiffusionOutcome(states, trace)
        registry = metrics()
        if registry.enabled:
            registry.counter("sim.runs").add(1)
            registry.counter("sim.rounds").add(trace.hops - 1)
            registry.counter("sim.activations.infected").add(outcome.infected_count)
            registry.counter("sim.activations.protected").add(outcome.protected_count)
        return outcome

    @abc.abstractmethod
    def _spread(
        self,
        graph: IndexedDiGraph,
        states: List[int],
        seeds: SeedSets,
        trace: HopTrace,
        rng: Optional[RngStream],
        max_hops: int,
    ) -> None:
        """Advance the cascades in place, recording each hop on ``trace``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
