"""Shared diffusion-model infrastructure.

Node states, validated seed sets, the outcome record, and the
:class:`DiffusionModel` base class every model implements. All models run
on an :class:`repro.graph.compact.IndexedDiGraph` (integer node ids) for
speed; higher layers translate labels at the boundary.

The engine races **K >= 2 competing cascades**: cascade 0 is always the
rumor and cascades ``1 .. K-1`` are positive campaigns. Node states
encode the winning cascade as ``cascade_index + 1``, so the paper's
two-cascade R/P model (K=2) keeps its historical encoding:
``INFECTED == 1`` is cascade 0 (the rumor) and ``PROTECTED == 2`` is
cascade 1 (the protector campaign).

The three common properties of Section III are enforced here and tested
property-based:

1. every cascade starts at step 0 (seeds are hop 0 of the trace);
2. when several cascades reach a node in the same step, the earliest
   cascade in the :class:`CascadeSet` priority order wins — the default
   ``positives-first`` order reproduces the paper's "P wins" rule;
3. activation is progressive — a state array entry only ever moves
   ``INACTIVE -> active`` and then never changes.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import SeedError
from repro.graph.compact import IndexedDiGraph
from repro.diffusion.trace import HopTrace
from repro.obs.registry import metrics
from repro.rng import RngStream
from repro.utils.validation import check_positive

__all__ = [
    "INACTIVE",
    "INFECTED",
    "PROTECTED",
    "PRIORITY_RULES",
    "priority_order",
    "CascadeSet",
    "SeedSets",
    "DiffusionOutcome",
    "DiffusionModel",
    "DEFAULT_MAX_HOPS",
]

#: Node states. Small ints rather than an Enum: the simulators index state
#: arrays millions of times, and int compares are measurably faster.
#: Cascade ``k`` activates nodes into state ``k + 1``; INFECTED/PROTECTED
#: are the K=2 names of states 1 and 2.
INACTIVE = 0
INFECTED = 1
PROTECTED = 2

#: The paper runs OPOAO comparisons for 31 hops (Section VI.B.2).
DEFAULT_MAX_HOPS = 31

#: Named cascade priority rules (see :func:`priority_order`).
PRIORITY_RULES = ("positives-first", "rumor-first")


def priority_order(rule: str, cascade_count: int) -> Tuple[int, ...]:
    """Resolve a named priority rule to a cascade-index permutation.

    ``positives-first`` (the default, and the paper's common property 2
    generalised): every positive campaign beats the rumor on simultaneous
    arrival, campaigns tie-breaking among themselves by index. For K=2
    this is exactly "P wins". ``rumor-first`` inverts the tie: the rumor
    claims contested nodes — the adversarial worst case the distributed
    blocking scenario also reports.
    """
    if rule == "positives-first":
        return tuple(range(1, cascade_count)) + (0,)
    if rule == "rumor-first":
        return tuple(range(cascade_count))
    raise SeedError(
        f"unknown priority rule {rule!r}; expected one of {PRIORITY_RULES}"
    )


class CascadeSet:
    """Validated family of K pairwise-disjoint cascade seed sets.

    ``cascades[0]`` is the rumor and must be non-empty (there is no
    rumor-blocking problem without a rumor); positive campaigns
    ``cascades[1:]`` may be empty (the paper's NoBlocking baseline).

    Args:
        cascades: one iterable of node ids per cascade, rumor first.
        priority: tie-break order on simultaneous arrival — a named rule
            from :data:`PRIORITY_RULES` or an explicit permutation of
            cascade indices. Defaults to ``positives-first``.
    """

    __slots__ = ("cascades", "priority")

    def __init__(
        self,
        cascades: Sequence[Iterable[int]],
        priority: Union[str, Sequence[int], None] = None,
    ) -> None:
        sets: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(cascade) for cascade in cascades
        )
        if len(sets) < 2:
            raise SeedError(
                f"a cascade race needs at least 2 cascades (rumor + positives); "
                f"got {len(sets)}"
            )
        if not sets[0]:
            raise SeedError("rumor seed set must not be empty")
        seen: set = set()
        overlap: set = set()
        for cascade in sets:
            overlap |= seen & cascade
            seen |= cascade
        if overlap:
            raise SeedError(
                f"seed sets must be disjoint; both contain {sorted(overlap)[:5]}"
            )
        self.cascades = sets
        if priority is None:
            priority = "positives-first"
        if isinstance(priority, str):
            order = priority_order(priority, len(sets))
        else:
            order = tuple(int(index) for index in priority)
            if sorted(order) != list(range(len(sets))):
                raise SeedError(
                    f"priority must be a permutation of cascade indices "
                    f"0..{len(sets) - 1}; got {order}"
                )
        self.priority: Tuple[int, ...] = order

    @property
    def cascade_count(self) -> int:
        """Number of competing cascades, K."""
        return len(self.cascades)

    def all_seeds(self) -> FrozenSet[int]:
        """Union of every cascade's seed set."""
        return frozenset().union(*self.cascades)

    def validate_against(self, graph: IndexedDiGraph) -> None:
        """Check every seed id is a valid node of ``graph``."""
        n = graph.node_count
        for seed in self.all_seeds():
            if not isinstance(seed, int) or isinstance(seed, bool) or not 0 <= seed < n:
                raise SeedError(f"seed {seed!r} is not a node id in [0, {n})")

    def __repr__(self) -> str:
        sizes = ", ".join(str(len(cascade)) for cascade in self.cascades)
        return f"CascadeSet(K={self.cascade_count}, sizes=[{sizes}])"


class SeedSets(CascadeSet):
    """The two-cascade case: disjoint rumor (``S_R``) / protector (``S_P``) seeds.

    Kept as the K=2 view over :class:`CascadeSet` so the paper-facing
    API (and every existing call site) is unchanged: ``positives-first``
    priority is exactly Section III's "P wins simultaneous arrival".
    """

    __slots__ = ()

    def __init__(self, rumors: Iterable[int], protectors: Iterable[int] = ()) -> None:
        super().__init__((rumors, protectors))

    @property
    def rumors(self) -> FrozenSet[int]:
        return self.cascades[0]

    @property
    def protectors(self) -> FrozenSet[int]:
        return self.cascades[1]

    def __repr__(self) -> str:
        return f"SeedSets(|R|={len(self.rumors)}, |P|={len(self.protectors)})"


class DiffusionOutcome:
    """Final state of one diffusion run.

    Attributes:
        states: per-node final state (``INACTIVE`` or ``cascade + 1``),
            indexed by node id.
        trace: the hop-by-hop :class:`~repro.diffusion.trace.HopTrace`.
    """

    __slots__ = ("states", "trace")

    def __init__(self, states: Sequence[int], trace: HopTrace) -> None:
        self.states: List[int] = list(states)
        self.trace = trace

    @property
    def infected_count(self) -> int:
        """Total infected nodes — cascade 0, the rumor (seeds included)."""
        return sum(1 for state in self.states if state == INFECTED)

    @property
    def protected_count(self) -> int:
        """Total nodes taken by *any* positive campaign (seeds included)."""
        return sum(1 for state in self.states if state >= PROTECTED)

    def cascade_counts(self) -> List[int]:
        """Per-cascade final activation counts, indexed by cascade."""
        counts = [0] * self.trace.cascade_count
        for state in self.states:
            if state != INACTIVE:
                counts[state - 1] += 1
        return counts

    def infected_ids(self) -> List[int]:
        """Ids of infected nodes."""
        return [node for node, state in enumerate(self.states) if state == INFECTED]

    def protected_ids(self) -> List[int]:
        """Ids of nodes taken by any positive campaign."""
        return [node for node, state in enumerate(self.states) if state >= PROTECTED]

    def cascade_ids(self, cascade: int) -> List[int]:
        """Ids of the nodes cascade ``cascade`` activated."""
        wanted = cascade + 1
        return [node for node, state in enumerate(self.states) if state == wanted]

    def state_of(self, node_id: int) -> int:
        """Final state of one node."""
        return self.states[node_id]

    def __repr__(self) -> str:
        return (
            f"DiffusionOutcome(infected={self.infected_count}, "
            f"protected={self.protected_count}, hops={self.trace.hops})"
        )


class DiffusionModel(abc.ABC):
    """Base class for competitive K-cascade diffusion models.

    Subclasses implement :meth:`_spread`, receiving pre-validated inputs
    and a pre-seeded state array; the template method :meth:`run` handles
    validation and seeding so every model enforces the common Section III
    properties identically.
    """

    #: human-readable name used in reports.
    name: str = "diffusion"

    #: whether the model consumes randomness (DOAM does not).
    stochastic: bool = True

    def run(
        self,
        graph: IndexedDiGraph,
        seeds: CascadeSet,
        rng: Optional[RngStream] = None,
        max_hops: int = DEFAULT_MAX_HOPS,
    ) -> DiffusionOutcome:
        """Run one realisation of the model.

        Args:
            graph: indexed graph to diffuse on.
            seeds: validated (disjoint) cascade seed sets, as node ids.
            rng: random stream; required for stochastic models.
            max_hops: horizon; diffusion also stops early once no further
                activation is possible.

        Returns:
            The final :class:`DiffusionOutcome`.
        """
        check_positive(max_hops, "max_hops")
        seeds.validate_against(graph)
        if self.stochastic and rng is None:
            raise ValueError(f"{self.name} is stochastic and needs an RngStream")
        states = [INACTIVE] * graph.node_count
        for index, cascade in enumerate(seeds.cascades):
            state = index + 1
            for node in cascade:
                states[node] = state
        trace = HopTrace(cascade_count=seeds.cascade_count)
        trace.record_cascades([sorted(cascade) for cascade in seeds.cascades])
        self._spread(graph, states, seeds, trace, rng, max_hops)
        outcome = DiffusionOutcome(states, trace)
        registry = metrics()
        if registry.enabled:
            registry.counter("sim.runs").add(1)
            registry.counter("sim.rounds").add(trace.hops - 1)
            registry.counter("sim.activations.infected").add(outcome.infected_count)
            registry.counter("sim.activations.protected").add(outcome.protected_count)
        return outcome

    @abc.abstractmethod
    def _spread(
        self,
        graph: IndexedDiGraph,
        states: List[int],
        seeds: CascadeSet,
        trace: HopTrace,
        rng: Optional[RngStream],
        max_hops: int,
    ) -> None:
        """Advance the cascades in place, recording each hop on ``trace``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
