"""Monte-Carlo simulation harness.

The paper's OPOAO figures report "the average results obtained by repeated
Monte Carlo simulation" (Section VI.B.2). :class:`MonteCarloSimulator`
runs a diffusion model over many independent replica streams and
aggregates per-hop infected/protected counts into a
:class:`SimulationAggregate`; deterministic models (DOAM) short-circuit to
a single run.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.diffusion.base import (
    DEFAULT_MAX_HOPS,
    DiffusionModel,
    DiffusionOutcome,
    SeedSets,
)
from repro.graph.compact import IndexedDiGraph
from repro.obs.registry import metrics
from repro.rng import RngStream
from repro.utils.stats import RunningStats
from repro.utils.validation import check_positive

__all__ = ["MonteCarloSimulator", "SimulationAggregate", "WorldOutcomeView"]


class SimulationAggregate:
    """Replica-averaged diffusion statistics.

    Attributes:
        hops: the horizon all series are padded to.
        runs: number of replicas aggregated.
        infected_per_hop: mean cumulative infected nodes at each hop
            (length ``hops + 1``; hop 0 = seeds).
        protected_per_hop: mean cumulative protected nodes at each hop.
        final_infected: :class:`RunningStats` of the final infected count.
        final_protected: :class:`RunningStats` of the final protected count.
    """

    __slots__ = (
        "hops",
        "runs",
        "_infected_stats",
        "_protected_stats",
        "final_infected",
        "final_protected",
    )

    def __init__(self, hops: int) -> None:
        self.hops = hops
        self.runs = 0
        self._infected_stats = [RunningStats() for _ in range(hops + 1)]
        self._protected_stats = [RunningStats() for _ in range(hops + 1)]
        self.final_infected = RunningStats()
        self.final_protected = RunningStats()

    def add(self, outcome: DiffusionOutcome) -> None:
        """Fold one run's trace into the aggregate."""
        self.runs += 1
        for hop in range(self.hops + 1):
            self._infected_stats[hop].add(outcome.trace.infected_at(hop))
            self._protected_stats[hop].add(outcome.trace.protected_at(hop))
        self.final_infected.add(outcome.infected_count)
        self.final_protected.add(outcome.protected_count)

    def add_series(
        self,
        infected_series: Sequence[int],
        protected_series: Sequence[int],
        final_infected: int,
        final_protected: int,
    ) -> None:
        """Fold one replica's pre-extracted series in.

        The parallel simulator's workers ship each replica as plain
        integer series (already clamped to ``hops + 1`` entries); folding
        them here in replica order feeds the same values to the same
        :class:`RunningStats` sequence as :meth:`add` would on the
        original outcomes — the aggregate is bit-identical to serial.
        """
        if len(infected_series) != self.hops + 1:
            raise ValueError(
                f"series must have {self.hops + 1} entries, "
                f"got {len(infected_series)}"
            )
        self.runs += 1
        for hop in range(self.hops + 1):
            self._infected_stats[hop].add(infected_series[hop])
            self._protected_stats[hop].add(protected_series[hop])
        self.final_infected.add(final_infected)
        self.final_protected.add(final_protected)

    def add_batch(self, batch) -> None:
        """Fold a kernel :class:`~repro.kernels.base.BatchOutcome` in.

        Every world contributes the same per-hop cumulative series a
        :meth:`add` call would, so mixing batched and per-run replicas in
        one aggregate is sound.
        """
        for world in range(batch.batch):
            self.runs += 1
            for hop in range(self.hops + 1):
                self._infected_stats[hop].add(batch.infected_at(world, hop))
                self._protected_stats[hop].add(batch.protected_at(world, hop))
            self.final_infected.add(batch.final_infected(world))
            self.final_protected.add(batch.final_protected(world))

    @property
    def infected_per_hop(self) -> List[float]:
        """Mean cumulative infected count per hop."""
        return [stats.mean for stats in self._infected_stats]

    @property
    def protected_per_hop(self) -> List[float]:
        """Mean cumulative protected count per hop."""
        return [stats.mean for stats in self._protected_stats]

    def infected_stats_at(self, hop: int) -> RunningStats:
        """Full stats (mean/sd/min/max) of the infected count at a hop."""
        return self._infected_stats[min(hop, self.hops)]

    def merge(self, other: "SimulationAggregate") -> "SimulationAggregate":
        """Combine two aggregates over the same horizon (parallel workers)."""
        if other.hops != self.hops:
            raise ValueError(
                f"cannot merge aggregates with hops {self.hops} != {other.hops}"
            )
        merged = SimulationAggregate(self.hops)
        merged.runs = self.runs + other.runs
        merged._infected_stats = [
            mine.merge(theirs)
            for mine, theirs in zip(self._infected_stats, other._infected_stats)
        ]
        merged._protected_stats = [
            mine.merge(theirs)
            for mine, theirs in zip(self._protected_stats, other._protected_stats)
        ]
        merged.final_infected = self.final_infected.merge(other.final_infected)
        merged.final_protected = self.final_protected.merge(other.final_protected)
        return merged

    def __repr__(self) -> str:
        return (
            f"SimulationAggregate(runs={self.runs}, hops={self.hops}, "
            f"final_infected={self.final_infected.mean:.1f})"
        )


class WorldOutcomeView:
    """One world of a kernel batch, shaped like a ``DiffusionOutcome``.

    Exposes exactly the surface callers of ``on_outcome`` consume
    (``states`` plus the final counts), so batched simulations can feed
    the same collection callbacks as the per-replica path.
    """

    __slots__ = ("states", "infected_count", "protected_count")

    def __init__(self, batch, world: int) -> None:
        self.states = batch.states_row(world)
        self.infected_count = batch.final_infected(world)
        self.protected_count = batch.final_protected(world)


class MonteCarloSimulator:
    """Run a model repeatedly and aggregate its traces.

    Args:
        model: any :class:`~repro.diffusion.base.DiffusionModel`.
        runs: replica count for stochastic models; deterministic models
            always run once.
        max_hops: horizon for every run (paper default: 31).
        backend: ``None`` runs the model per replica (the reference
            path); a kernel backend name (``"python"``/``"numpy"``/
            ``"auto"``) races all replicas in one batched kernel call
            instead. The model must be reducible to a kernel spec.

    Example:
        >>> # doctest setup omitted; see tests/diffusion/test_simulation.py
    """

    def __init__(
        self,
        model: DiffusionModel,
        runs: int = 200,
        max_hops: int = DEFAULT_MAX_HOPS,
        backend: Optional[str] = None,
    ) -> None:
        self.model = model
        self.runs = int(check_positive(runs, "runs"))
        self.max_hops = int(check_positive(max_hops, "max_hops"))
        self.backend = backend

    def _simulate_batched(
        self,
        graph: IndexedDiGraph,
        seeds: SeedSets,
        rng: Optional[RngStream],
        on_outcome: Optional[Callable],
    ) -> SimulationAggregate:
        # Imported here (and from the leaf modules) so the zero-dependency
        # per-replica path never touches the kernels package.
        from repro.kernels.registry import resolve_backend
        from repro.kernels.spec import spec_for_model
        from repro.rng import derive_seed

        registry = metrics()
        spec = spec_for_model(self.model)
        backend = resolve_backend(self.backend)
        batch = self.runs if spec.stochastic else 1
        if spec.stochastic and rng is None:
            raise ValueError(
                f"{self.model.name} is stochastic and needs an RngStream"
            )
        seed = derive_seed(rng.seed, "mc-worlds") if rng is not None else 0
        with registry.timer("time.simulate"):
            worlds = backend.sample_worlds(
                graph, spec, batch, max_hops=self.max_hops, seed=seed
            )
            outcome = backend.run_worlds(
                graph, spec, worlds, seeds, self.max_hops
            )
        aggregate = SimulationAggregate(self.max_hops)
        aggregate.add_batch(outcome)
        if registry.enabled:
            registry.counter("sim.worlds").add(batch)
        if on_outcome is not None:
            for world in range(batch):
                on_outcome(WorldOutcomeView(outcome, world))
        return aggregate

    def simulate(
        self,
        graph: IndexedDiGraph,
        seeds: SeedSets,
        rng: Optional[RngStream] = None,
        on_outcome: Optional[Callable[[DiffusionOutcome], None]] = None,
    ) -> SimulationAggregate:
        """Run the configured number of replicas and aggregate.

        Args:
            graph: indexed graph.
            seeds: seed sets (node ids).
            rng: base stream; replica ``i`` runs on ``rng.replica(i)`` so
                results are independent of iteration order. Required for
                stochastic models.
            on_outcome: optional callback invoked with every outcome
                (used by the evaluator to collect extra statistics without
                a second pass). On the batched path the callback receives
                a :class:`WorldOutcomeView` per world.
        """
        if self.backend is not None:
            return self._simulate_batched(graph, seeds, rng, on_outcome)
        registry = metrics()
        aggregate = SimulationAggregate(self.max_hops)
        if not self.model.stochastic:
            with registry.timer("time.simulate"):
                outcome = self.model.run(graph, seeds, rng=None, max_hops=self.max_hops)
            aggregate.add(outcome)
            if registry.enabled:
                registry.counter("sim.worlds").add(1)
            if on_outcome is not None:
                on_outcome(outcome)
            return aggregate

        if rng is None:
            raise ValueError(f"{self.model.name} is stochastic and needs an RngStream")
        with registry.timer("time.simulate"):
            for replica_index in range(self.runs):
                outcome = self.model.run(
                    graph, seeds, rng=rng.replica(replica_index), max_hops=self.max_hops
                )
                aggregate.add(outcome)
                if on_outcome is not None:
                    on_outcome(outcome)
        if registry.enabled:
            registry.counter("sim.worlds").add(self.runs)
        return aggregate

    def __repr__(self) -> str:
        backend = f", backend={self.backend!r}" if self.backend else ""
        return (
            f"MonteCarloSimulator(model={self.model.name}, runs={self.runs}, "
            f"max_hops={self.max_hops}{backend})"
        )
