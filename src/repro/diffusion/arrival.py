"""Closed-form DOAM arrival-time analysis.

Because DOAM is deterministic, each node's fate is fully described by two
numbers — the protector front's arrival time and the rumor front's — that
satisfy a Bellman-Ford-style fixpoint:

* a node relays P from time ``t_P`` if ``t_P <= t_R`` (P wins ties),
* a node relays R from time ``t_R`` if ``t_R < t_P``,
* arrivals relax along out-edges (+1 hop) until stable.

:func:`doam_arrival_times` computes that fixpoint directly (no front
simulation); it matches the step simulator exactly (property-tested in
``tests/properties/test_diffusion_properties.py``) and gives analyses the
*times* as well as the final states — e.g. how many steps of slack each
bridge end's protection has.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Tuple

from repro.diffusion.base import INACTIVE, INFECTED, PROTECTED
from repro.errors import SeedError
from repro.graph.digraph import DiGraph, Node

__all__ = ["doam_arrival_times", "protection_slack"]


def doam_arrival_times(
    graph: DiGraph,
    rumors: Iterable[Node],
    protectors: Iterable[Node] = (),
) -> Tuple[Dict[Node, float], Dict[Node, float], Dict[Node, int]]:
    """Per-node protector/rumor arrival times and final states under DOAM.

    Args:
        graph: the social network.
        rumors: rumor originators (non-empty, disjoint from protectors).
        protectors: protector originators.

    Returns:
        ``(t_p, t_r, status)`` — arrival times (``math.inf`` when a front
        never arrives) and the final state per node.
    """
    rumor_set = set(rumors)
    protector_set = set(protectors)
    if not rumor_set:
        raise SeedError("rumor seed set must not be empty")
    overlap = rumor_set & protector_set
    if overlap:
        raise SeedError(f"seed sets must be disjoint; both contain {sorted(overlap)[:5]}")
    for seed in rumor_set | protector_set:
        if seed not in graph:
            raise SeedError(f"seed {seed!r} is not in the graph")

    t_p: Dict[Node, float] = {node: math.inf for node in graph.nodes()}
    t_r: Dict[Node, float] = {node: math.inf for node in graph.nodes()}
    for node in protector_set:
        t_p[node] = 0.0
    for node in rumor_set:
        t_r[node] = 0.0

    # Event-ordered relaxation: a heap keyed by the node's earliest known
    # arrival (stable ties via EventOrder seq) processes fronts in
    # Dijkstra order — each node settles once per improvement instead of
    # churning through FIFO re-visits. The system is monotone, so this
    # terminates with the same unique least fixpoint as any worklist
    # order would.
    import heapq

    from repro.rng import EventOrder

    order = EventOrder()
    heap = [
        order.key(0.0) + (node,)
        for node in sorted(rumor_set | protector_set, key=repr)
    ]
    heapq.heapify(heap)
    queued = {entry[-1] for entry in heap}
    while heap:
        node = heapq.heappop(heap)[-1]
        queued.discard(node)
        relays_p = t_p[node] <= t_r[node] and t_p[node] < math.inf
        relays_r = t_r[node] < t_p[node]
        for head in graph.successors(node):
            changed = False
            if relays_p and t_p[node] + 1 < t_p[head]:
                t_p[head] = t_p[node] + 1
                changed = True
            if relays_r and t_r[node] + 1 < t_r[head]:
                t_r[head] = t_r[node] + 1
                changed = True
            if changed and head not in queued:
                heapq.heappush(
                    heap, order.key(min(t_p[head], t_r[head])) + (head,)
                )
                queued.add(head)

    status: Dict[Node, int] = {}
    for node in graph.nodes():
        if t_p[node] <= t_r[node] and t_p[node] < math.inf:
            status[node] = PROTECTED
        elif t_r[node] < t_p[node]:
            status[node] = INFECTED
        else:
            status[node] = INACTIVE
    return t_p, t_r, status


def protection_slack(
    graph: DiGraph,
    rumors: Iterable[Node],
    protectors: Iterable[Node],
    targets: Iterable[Node],
) -> Dict[Node, float]:
    """How many steps of margin each protected target has (``t_R - t_P``).

    Positive slack means the protector front arrives strictly earlier
    than the rumor; zero means a P-priority tie; negative (or ``-inf``)
    means the target falls to the rumor. Useful for ranking how fragile a
    cover is before deploying it.
    """
    t_p, t_r, _ = doam_arrival_times(graph, rumors, protectors)
    slack: Dict[Node, float] = {}
    for target in targets:
        if target not in graph:
            raise SeedError(f"target {target!r} is not in the graph")
        if math.isinf(t_p[target]) and math.isinf(t_r[target]):
            slack[target] = math.inf  # never at risk
        else:
            slack[target] = t_r[target] - t_p[target]
    return slack
