"""The Opportunistic One-Activate-One (OPOAO) model (Section III.A).

Mechanics, exactly as the paper describes them:

* At every step, **every active node** ``u`` chooses one of its
  out-neighbors uniformly at random (probability ``1/d_out(u)``) as its
  activation target. The paper's Fig. 1 example shows seeds re-choosing at
  step 2 ("x chooses u and y chooses v again") and Section III.A notes "the
  speed of influence spread is slow under this model for the existence of
  repeat selection" — so selection repeats every step and may land on
  already-active neighbors, wasting the step.
* A targeted inactive node becomes active at the next step with the
  cascade of its activator; if both cascades target it in the same step,
  **P wins** (common property 2).
* Activation is progressive (common property 3).

Implementation notes
--------------------
Active nodes whose out-neighborhoods contain no inactive node can never
change the outcome; we keep a ``live`` set of active nodes that still have
at least one inactive out-neighbor and only sample targets for those. The
skipped nodes' picks are independent uniform draws that cannot hit an
inactive node, so dropping them leaves the process distribution unchanged
while making dense late-stage hops cheap. ``live`` is maintained
incrementally via per-node inactive-out-neighbor counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.diffusion.base import (
    INACTIVE,
    CascadeSet,
    DiffusionModel,
)
from repro.diffusion.trace import HopTrace
from repro.graph.compact import IndexedDiGraph
from repro.obs.registry import metrics
from repro.rng import RngStream

__all__ = ["OPOAOModel"]


class OPOAOModel(DiffusionModel):
    """Opportunistic One-Activate-One competitive diffusion.

    Args:
        weighted: pick each step's activation target proportionally to
            edge weight instead of uniformly (extension for tie-strength
            data; the paper's model is the uniform default).
    """

    name = "OPOAO"
    stochastic = True

    def __init__(self, weighted: bool = False) -> None:
        self.weighted = bool(weighted)
        if self.weighted:
            self.name = "OPOAO-W"

    def _pick(
        self,
        graph: IndexedDiGraph,
        node: int,
        rng: RngStream,
        cumulative_cache: Dict[int, List[float]],
    ) -> int:
        neighbors = graph.out[node]
        if not self.weighted or len(neighbors) == 1:
            return neighbors[rng.randrange(len(neighbors))]
        table = cumulative_cache.get(node)
        if table is None:
            running, table = 0.0, []
            for weight in graph.out_weights[node]:
                running += weight
                table.append(running)
            cumulative_cache[node] = table
        target_mass = rng.random() * table[-1]
        lo, hi = 0, len(table) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if table[mid] <= target_mass:
                lo = mid + 1
            else:
                hi = mid
        return neighbors[lo]

    def _spread(
        self,
        graph: IndexedDiGraph,
        states: List[int],
        seeds: CascadeSet,
        trace: HopTrace,
        rng: Optional[RngStream],
        max_hops: int,
    ) -> None:
        assert rng is not None  # guaranteed by DiffusionModel.run
        out = graph.out
        order = seeds.priority
        cumulative_cache: Dict[int, List[float]] = {}

        # inactive-out-neighbor counters for active nodes.
        inactive_out: Dict[int, int] = {}
        live: Set[int] = set()

        def enroll(node: int) -> None:
            """Start tracking a newly active node."""
            count = sum(1 for neighbor in out[node] if states[neighbor] == INACTIVE)
            if count > 0:
                inactive_out[node] = count
                live.add(node)

        def on_activated(node: int) -> None:
            """Update counters of active in-neighbors after ``node`` activates."""
            for tail in graph.inn[node]:
                remaining = inactive_out.get(tail)
                if remaining is not None:
                    if remaining == 1:
                        del inactive_out[tail]
                        live.discard(tail)
                    else:
                        inactive_out[tail] = remaining - 1

        for seed in seeds.all_seeds():
            enroll(seed)

        # Work accounting, guarded per hop (every live node examines one
        # sampled out-edge per step under OPOAO).
        registry = metrics()
        track = registry.enabled
        node_visits = 0

        for _hop in range(max_hops):
            if not live:
                break
            if track:
                node_visits += len(live)
            targets: List[Set[int]] = [set() for _ in seeds.cascades]
            # Deterministic iteration order (sorted) keeps runs reproducible
            # under a fixed stream regardless of set-hash randomisation.
            for node in sorted(live):
                target = self._pick(graph, node, rng, cumulative_cache)
                if states[target] != INACTIVE:
                    continue  # repeat selection wasted on an active neighbor
                targets[states[node] - 1].add(target)
            # Priority resolves conflicts: later cascades in the order
            # drop targets an earlier cascade claimed this hop.
            claimed: Set[int] = set()
            for cascade in order:
                targets[cascade] -= claimed
                claimed |= targets[cascade]

            news: List[List[int]] = [sorted(chosen) for chosen in targets]
            for cascade, new in enumerate(news):
                state = cascade + 1
                for node in new:
                    states[node] = state
            # All counter decrements must land before any enroll: enroll
            # counts with post-activation states, so running on_activated
            # for a co-activated out-neighbor afterwards would decrement
            # the same edge twice and silence a still-live node.
            for new in news:
                for node in new:
                    on_activated(node)
            for new in news:
                for node in new:
                    enroll(node)
            trace.record_cascades(news)

        if track:
            registry.counter("sim.node_visits").add(node_visits)
            registry.counter("sim.edge_visits").add(node_visits)
