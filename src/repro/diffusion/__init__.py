"""Competitive two-cascade diffusion models and the simulation engine.

The paper (Section III) defines two models in which a rumor cascade R and a
protector cascade P spread simultaneously from disjoint seed sets, with
three shared properties: both start at step 0, P wins simultaneous
arrivals, and activation is progressive (no status ever reverts).

* :mod:`repro.diffusion.opoao` — Opportunistic One-Activate-One: every
  active node picks one uniformly random out-neighbor per step.
* :mod:`repro.diffusion.doam` — Deterministic One-Activate-Many: a newly
  active node activates all its inactive out-neighbors next step, once.
* :mod:`repro.diffusion.ic` / :mod:`repro.diffusion.lt` — competitive
  Independent Cascade and competitive Linear Threshold, the related-work
  models ([14], [16]) provided as extensions.
* :mod:`repro.diffusion.simulation` — Monte-Carlo runner aggregating
  per-hop infected/protected counts over replicas.
* :mod:`repro.diffusion.timestamps` — the edge-timestamp machinery of the
  submodularity proof (Section V.A.1, Fig. 1), exposed for inspection.
"""

from repro.diffusion.arrival import doam_arrival_times, protection_slack
from repro.diffusion.base import (
    INACTIVE,
    INFECTED,
    PRIORITY_RULES,
    PROTECTED,
    CascadeSet,
    DiffusionModel,
    DiffusionOutcome,
    SeedSets,
    priority_order,
)
from repro.diffusion.doam import DOAMModel
from repro.diffusion.ic import CompetitiveICModel
from repro.diffusion.lt import CompetitiveLTModel
from repro.diffusion.opoao import OPOAOModel
from repro.diffusion.parallel import ParallelMonteCarloSimulator
from repro.diffusion.simulation import MonteCarloSimulator, SimulationAggregate
from repro.diffusion.trace import HopTrace

__all__ = [
    "INACTIVE",
    "INFECTED",
    "PROTECTED",
    "PRIORITY_RULES",
    "CascadeSet",
    "priority_order",
    "DiffusionModel",
    "DiffusionOutcome",
    "SeedSets",
    "OPOAOModel",
    "DOAMModel",
    "CompetitiveICModel",
    "CompetitiveLTModel",
    "MonteCarloSimulator",
    "ParallelMonteCarloSimulator",
    "SimulationAggregate",
    "HopTrace",
    "doam_arrival_times",
    "protection_slack",
]
