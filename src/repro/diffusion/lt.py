"""Competitive Linear Threshold (CLT) model (extension).

He et al. [16] address influence-blocking maximisation under a competitive
LT model; the paper adapts their proof technique for OPOAO submodularity.
This module provides the CLT substrate itself:

* Every node ``v`` draws a threshold ``θ_v ~ U[0, 1]`` once per run.
* Incoming influence weight is ``b(u, v) = 1 / d_in(v)`` for every edge,
  so weights into a node sum to exactly 1.
* Thresholds are crossed **per cascade** (as in He et al.'s CLT): an
  inactive node joins the first cascade *in priority order* whose
  in-weight alone reaches ``θ_v``. The default ``positives-first`` order
  is P priority (common property 2) for K=2. Cascades never subsidise
  each other's activation — without this, seeding protectors near a
  rumor could perversely help the rumor cross thresholds.
* Progressive activation; the process stops when a sweep changes nothing.

Float accumulation order is part of the bit-identity contract: fronts
feed influence in priority order (P first for K=2, as before).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.diffusion.base import (
    INACTIVE,
    CascadeSet,
    DiffusionModel,
)
from repro.diffusion.trace import HopTrace
from repro.graph.compact import IndexedDiGraph
from repro.rng import RngStream

__all__ = ["CompetitiveLTModel"]


class CompetitiveLTModel(DiffusionModel):
    """K-cascade Linear Threshold with priority tie-breaking."""

    name = "CLT"
    stochastic = True

    def _spread(
        self,
        graph: IndexedDiGraph,
        states: List[int],
        seeds: CascadeSet,
        trace: HopTrace,
        rng: Optional[RngStream],
        max_hops: int,
    ) -> None:
        assert rng is not None
        n = graph.node_count
        thresholds = [rng.random() for _ in range(n)]

        # Track accumulated in-weight per cascade per inactive node, fed
        # only by the newly-activated front each step (LT influence is
        # permanent, so accumulation is equivalent to re-summing).
        cascade_weight: List[List[float]] = [
            [0.0] * n for _ in seeds.cascades
        ]

        def feed(front: List[int], weights: List[float]) -> Set[int]:
            """Push the front's influence; return nodes whose total crossed θ."""
            touched: Set[int] = set()
            for node in front:
                for neighbor in graph.out[node]:
                    if states[neighbor] != INACTIVE:
                        continue
                    weights[neighbor] += 1.0 / max(1, graph.in_degree(neighbor))
                    touched.add(neighbor)
            return touched

        order = seeds.priority
        fronts: List[List[int]] = [sorted(cascade) for cascade in seeds.cascades]

        for _hop in range(max_hops):
            if not any(fronts):
                break
            touched: Set[int] = set()
            for cascade in order:
                touched |= feed(fronts[cascade], cascade_weight[cascade])

            news: List[List[int]] = [[] for _ in fronts]
            for node in sorted(touched):
                for cascade in order:
                    if cascade_weight[cascade][node] + 1e-12 >= thresholds[node]:
                        news[cascade].append(node)
                        break
            if not any(news):
                break  # no threshold crossed; accumulation is frozen
            for cascade, new in enumerate(news):
                state = cascade + 1
                for node in new:
                    states[node] = state
            trace.record_cascades(news)
            fronts = news
