"""Competitive Linear Threshold (CLT) model (extension).

He et al. [16] address influence-blocking maximisation under a competitive
LT model; the paper adapts their proof technique for OPOAO submodularity.
This module provides the CLT substrate itself:

* Every node ``v`` draws a threshold ``θ_v ~ U[0, 1]`` once per run.
* Incoming influence weight is ``b(u, v) = 1 / d_in(v)`` for every edge,
  so weights into a node sum to exactly 1.
* Thresholds are crossed **per cascade** (as in He et al.'s CLT): an
  inactive node becomes protected when its *protected* in-weight alone
  reaches ``θ_v``, infected when its *infected* in-weight alone does, and
  protected when both cross in the same step (**P priority**, common
  property 2). Cascades never subsidise each other's activation — without
  this, seeding protectors near a rumor could perversely help the rumor
  cross thresholds.
* Progressive activation; the process stops when a sweep changes nothing.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.diffusion.base import (
    INACTIVE,
    INFECTED,
    PROTECTED,
    DiffusionModel,
    SeedSets,
)
from repro.diffusion.trace import HopTrace
from repro.graph.compact import IndexedDiGraph
from repro.rng import RngStream

__all__ = ["CompetitiveLTModel"]


class CompetitiveLTModel(DiffusionModel):
    """Two-cascade Linear Threshold with protector tie-priority."""

    name = "CLT"
    stochastic = True

    def _spread(
        self,
        graph: IndexedDiGraph,
        states: List[int],
        seeds: SeedSets,
        trace: HopTrace,
        rng: Optional[RngStream],
        max_hops: int,
    ) -> None:
        assert rng is not None
        n = graph.node_count
        thresholds = [rng.random() for _ in range(n)]

        # Track accumulated protected/infected in-weight per inactive node,
        # fed only by the newly-activated front each step (LT influence is
        # permanent, so accumulation is equivalent to re-summing).
        protected_weight = [0.0] * n
        infected_weight = [0.0] * n

        def feed(front: List[int], weights: List[float]) -> Set[int]:
            """Push the front's influence; return nodes whose total crossed θ."""
            touched: Set[int] = set()
            for node in front:
                for neighbor in graph.out[node]:
                    if states[neighbor] != INACTIVE:
                        continue
                    weights[neighbor] += 1.0 / max(1, graph.in_degree(neighbor))
                    touched.add(neighbor)
            return touched

        protected_front: List[int] = sorted(seeds.protectors)
        infected_front: List[int] = sorted(seeds.rumors)

        for _hop in range(max_hops):
            if not protected_front and not infected_front:
                break
            touched = feed(protected_front, protected_weight)
            touched |= feed(infected_front, infected_weight)

            new_protected: List[int] = []
            new_infected: List[int] = []
            for node in sorted(touched):
                crosses_protected = protected_weight[node] + 1e-12 >= thresholds[node]
                crosses_infected = infected_weight[node] + 1e-12 >= thresholds[node]
                if crosses_protected:  # P priority when both cascades cross
                    new_protected.append(node)
                elif crosses_infected:
                    new_infected.append(node)
            if not new_protected and not new_infected:
                break  # no threshold crossed; accumulation is frozen
            for node in new_protected:
                states[node] = PROTECTED
            for node in new_infected:
                states[node] = INFECTED
            trace.record(new_infected, new_protected)
            protected_front = new_protected
            infected_front = new_infected
