"""Hop-by-hop record of a diffusion run.

The paper's OPOAO/DOAM figures (Fig. 4-9) plot the number of infected
nodes per hop; :class:`HopTrace` is the per-run record those series are
aggregated from. Hop 0 is the seeding step.

A trace tracks one cumulative series per cascade. The two-cascade
accessors (``infected``/``protected``/``newly_*``) remain the primary
read API: ``infected`` is always cascade 0 (the rumor) and ``protected``
aggregates every positive campaign — for K=2 that is literally cascade 1,
so pre-refactor consumers see identical values.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["HopTrace"]


class HopTrace:
    """Cumulative per-cascade activation counts per hop.

    Attributes:
        series: ``series[k][h]`` = total nodes cascade ``k`` holds after
            hop ``h``.
        newly: ``newly[k][h]`` = nodes cascade ``k`` first claimed at hop
            ``h`` (ids).
    """

    __slots__ = ("series", "newly")

    def __init__(self, cascade_count: int = 2) -> None:
        if cascade_count < 2:
            raise ValueError(f"cascade_count must be >= 2, got {cascade_count}")
        self.series: List[List[int]] = [[] for _ in range(cascade_count)]
        self.newly: List[List[List[int]]] = [[] for _ in range(cascade_count)]

    @property
    def cascade_count(self) -> int:
        """Number of cascades the trace tracks."""
        return len(self.series)

    def record_cascades(self, fronts: Sequence[Sequence[int]]) -> None:
        """Append one hop's newly activated nodes, one front per cascade."""
        if len(fronts) != len(self.series):
            raise ValueError(
                f"expected {len(self.series)} fronts, got {len(fronts)}"
            )
        for cascade, front in enumerate(fronts):
            series = self.series[cascade]
            previous = series[-1] if series else 0
            series.append(previous + len(front))
            self.newly[cascade].append(list(front))

    def record(self, new_infected: Sequence[int], new_protected: Sequence[int]) -> None:
        """Two-cascade convenience: append one hop's (R, P) fronts."""
        self.record_cascades([new_infected, new_protected])

    # -- two-cascade-compatible accessors ---------------------------------------

    @property
    def infected(self) -> List[int]:
        """``infected[h]`` = total infected (cascade 0) nodes after hop ``h``."""
        return self.series[0]

    @property
    def protected(self) -> List[int]:
        """``protected[h]`` = total nodes of all positive campaigns after ``h``."""
        if len(self.series) == 2:
            return self.series[1]
        return [
            sum(series[hop] for series in self.series[1:])
            for hop in range(len(self.series[0]))
        ]

    @property
    def newly_infected(self) -> List[List[int]]:
        """Nodes first infected at each hop (ids)."""
        return self.newly[0]

    @property
    def newly_protected(self) -> List[List[int]]:
        """Nodes first claimed by any positive campaign at each hop (ids)."""
        if len(self.newly) == 2:
            return self.newly[1]
        return [
            sorted(node for newly in self.newly[1:] for node in newly[hop])
            for hop in range(len(self.newly[0]))
        ]

    @property
    def hops(self) -> int:
        """Number of recorded hops (including hop 0, the seeding)."""
        return len(self.series[0])

    def cascade_at(self, cascade: int, hop: int) -> int:
        """Cumulative count of cascade ``cascade`` after ``hop`` (clamped)."""
        series = self.series[cascade]
        if not series:
            return 0
        return series[min(hop, len(series) - 1)]

    def infected_at(self, hop: int) -> int:
        """Cumulative infected count after ``hop`` (clamped to the last hop).

        Diffusion may terminate before the requested horizon; the paper's
        plots hold the final value flat afterwards, and so does this
        accessor.
        """
        return self.cascade_at(0, hop)

    def protected_at(self, hop: int) -> int:
        """Cumulative positive-campaign count after ``hop`` (clamped)."""
        if len(self.series) == 2:
            return self.cascade_at(1, hop)
        return sum(
            self.cascade_at(cascade, hop)
            for cascade in range(1, len(self.series))
        )

    def padded_infected(self, hops: int) -> List[int]:
        """Infected series padded/clamped to exactly ``hops + 1`` entries."""
        return [self.infected_at(h) for h in range(hops + 1)]

    def __repr__(self) -> str:
        final_infected = self.series[0][-1] if self.series[0] else 0
        final_protected = self.protected_at(self.hops) if self.hops else 0
        return (
            f"HopTrace(hops={self.hops}, infected={final_infected}, "
            f"protected={final_protected})"
        )
