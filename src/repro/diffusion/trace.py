"""Hop-by-hop record of a diffusion run.

The paper's OPOAO/DOAM figures (Fig. 4-9) plot the number of infected
nodes per hop; :class:`HopTrace` is the per-run record those series are
aggregated from. Hop 0 is the seeding step.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["HopTrace"]


class HopTrace:
    """Cumulative infected/protected counts per hop.

    Attributes:
        infected: ``infected[h]`` = total infected nodes after hop ``h``.
        protected: same for protected nodes.
        newly_infected: nodes first infected at each hop (ids).
        newly_protected: nodes first protected at each hop (ids).
    """

    __slots__ = ("infected", "protected", "newly_infected", "newly_protected")

    def __init__(self) -> None:
        self.infected: List[int] = []
        self.protected: List[int] = []
        self.newly_infected: List[List[int]] = []
        self.newly_protected: List[List[int]] = []

    def record(self, new_infected: Sequence[int], new_protected: Sequence[int]) -> None:
        """Append one hop's newly activated nodes."""
        previous_infected = self.infected[-1] if self.infected else 0
        previous_protected = self.protected[-1] if self.protected else 0
        self.infected.append(previous_infected + len(new_infected))
        self.protected.append(previous_protected + len(new_protected))
        self.newly_infected.append(list(new_infected))
        self.newly_protected.append(list(new_protected))

    @property
    def hops(self) -> int:
        """Number of recorded hops (including hop 0, the seeding)."""
        return len(self.infected)

    def infected_at(self, hop: int) -> int:
        """Cumulative infected count after ``hop`` (clamped to the last hop).

        Diffusion may terminate before the requested horizon; the paper's
        plots hold the final value flat afterwards, and so does this
        accessor.
        """
        if not self.infected:
            return 0
        return self.infected[min(hop, len(self.infected) - 1)]

    def protected_at(self, hop: int) -> int:
        """Cumulative protected count after ``hop`` (clamped)."""
        if not self.protected:
            return 0
        return self.protected[min(hop, len(self.protected) - 1)]

    def padded_infected(self, hops: int) -> List[int]:
        """Infected series padded/clamped to exactly ``hops + 1`` entries."""
        return [self.infected_at(h) for h in range(hops + 1)]

    def __repr__(self) -> str:
        final_infected = self.infected[-1] if self.infected else 0
        final_protected = self.protected[-1] if self.protected else 0
        return (
            f"HopTrace(hops={self.hops}, infected={final_infected}, "
            f"protected={final_protected})"
        )
