"""Named dataset configurations matching the paper's experiment settings.

Section VI evaluates three (network, rumor community) pairs:

=================  ======== ======= =======
setting            |N|      |C|     |B|
=================  ======== ======= =======
Hep                15 233   308     387
Enron (small C)    36 692   80      135
Enron (large C)    36 692   2 631   2 250
=================  ======== ======= =======

:func:`load_dataset` builds the scaled synthetic replica, detects
communities (Louvain, as the paper does — or uses the generator's planted
partition), and picks the rumor community whose *relative* size is closest
to the paper's ``|C| / |N|`` — preserving each setting's regime (tiny,
small, large-and-dense) at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.community.louvain import louvain
from repro.community.structure import CommunityStructure
from repro.datasets.synthetic import SyntheticNetwork, enron_like, hep_like
from repro.errors import DatasetError
from repro.graph.digraph import DiGraph
from repro.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["DatasetSpec", "LoadedDataset", "load_dataset", "list_datasets"]


@dataclass(frozen=True)
class DatasetSpec:
    """One of the paper's experiment settings.

    Attributes:
        name: registry key.
        builder: synthetic-network factory taking ``(scale, rng)``.
        community_fraction: the paper's ``|C| / |N|`` for this setting.
        paper_nodes / paper_community / paper_bridge_ends: the original
            statistics, for side-by-side reporting.
        description: one-line summary.
    """

    name: str
    builder: Callable[[float, RngStream], SyntheticNetwork]
    community_fraction: float
    paper_nodes: int
    paper_community: int
    paper_bridge_ends: int
    description: str


_REGISTRY: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(
    DatasetSpec(
        name="hep",
        builder=lambda scale, rng: hep_like(scale=scale, rng=rng),
        community_fraction=308 / 15233,
        paper_nodes=15233,
        paper_community=308,
        paper_bridge_ends=387,
        description="Hep collaboration replica, medium community (Fig. 4/7, Table I)",
    )
)
_register(
    DatasetSpec(
        name="enron-small",
        builder=lambda scale, rng: enron_like(scale=scale, rng=rng),
        community_fraction=80 / 36692,
        paper_nodes=36692,
        paper_community=80,
        paper_bridge_ends=135,
        description="Enron e-mail replica, small community (Fig. 5/8, Table I)",
    )
)
_register(
    DatasetSpec(
        name="enron-large",
        builder=lambda scale, rng: enron_like(scale=scale, rng=rng),
        community_fraction=2631 / 36692,
        paper_nodes=36692,
        paper_community=2631,
        paper_bridge_ends=2250,
        description="Enron e-mail replica, large dense community (Fig. 6/9, Table I)",
    )
)


def list_datasets() -> List[DatasetSpec]:
    """All registered dataset specs, in registration order."""
    return list(_REGISTRY.values())


class LoadedDataset:
    """A materialised experiment setting.

    Attributes:
        spec: the originating :class:`DatasetSpec`.
        graph: the replica network.
        communities: the community cover actually used.
        rumor_community: id of the chosen rumor community.
    """

    __slots__ = ("spec", "graph", "communities", "rumor_community")

    def __init__(
        self,
        spec: DatasetSpec,
        graph: DiGraph,
        communities: CommunityStructure,
        rumor_community: int,
    ) -> None:
        self.spec = spec
        self.graph = graph
        self.communities = communities
        self.rumor_community = rumor_community

    @property
    def rumor_community_nodes(self):
        """Node set of the rumor community."""
        return self.communities.members(self.rumor_community)

    def __repr__(self) -> str:
        return (
            f"LoadedDataset({self.spec.name!r}, |N|={self.graph.node_count}, "
            f"|C|={self.communities.size(self.rumor_community)})"
        )


def _pick_rumor_community(
    communities: CommunityStructure, target_fraction: float, total_nodes: int
) -> int:
    """Community whose relative size best matches the paper's fraction.

    Communities smaller than 5 nodes are skipped — they cannot host the
    paper's smallest rumor-seed draws (1% of |C| rounded up needs a
    community with room for seeds *and* internal structure).
    """
    target = target_fraction * total_nodes
    best_id: Optional[int] = None
    best_gap: Optional[float] = None
    for community_id, members in communities.iter_blocks():
        size = len(members)
        if size < 5:
            continue
        gap = abs(size - target)
        if best_gap is None or gap < best_gap:
            best_gap = gap
            best_id = community_id
    if best_id is None:
        raise DatasetError("no community with >= 5 nodes; graph too fragmented")
    return best_id


def load_dataset(
    name: str,
    scale: float = 0.1,
    seed: int = 13,
    communities: str = "louvain",
) -> LoadedDataset:
    """Build a named experiment setting.

    Args:
        name: one of :func:`list_datasets`'s names.
        scale: replica scale versus the original node count.
        seed: master seed (generator and detector both derive from it).
        communities: ``"louvain"`` (detect, as the paper does) or
            ``"planted"`` (use the generator's ground truth).

    Returns:
        A :class:`LoadedDataset` with the rumor community chosen to match
        the paper's relative community size.
    """
    check_positive(scale, "scale")
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}")
    if communities not in ("louvain", "planted"):
        raise DatasetError(
            f"communities must be 'louvain' or 'planted', got {communities!r}"
        )
    spec = _REGISTRY[name]
    rng = RngStream(seed, name=f"dataset-{name}")
    network = spec.builder(scale, rng.fork("build"))
    if communities == "louvain":
        result = louvain(network.graph, rng=rng.fork("louvain"))
        cover = CommunityStructure(network.graph, result.membership)
    else:
        cover = network.communities()
    rumor_community = _pick_rumor_community(
        cover, spec.community_fraction, network.graph.node_count
    )
    return LoadedDataset(spec, network.graph, cover, rumor_community)
