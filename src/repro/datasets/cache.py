"""On-disk caching of generated experiment datasets.

Replica generation plus Louvain detection is the fixed cost every
benchmark pays; for repeated runs (sweeps, CI) the result can be cached —
graph as JSON, community membership as a sidecar, pick metadata as a
small JSON — keyed by ``(name, scale, seed, communities-mode)``. The
cache is *content-checked* on load: a digest of the key parameters is
stored and verified, so stale files from an older configuration never
leak into results silently.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.community.structure import CommunityStructure
from repro.datasets.registry import (
    LoadedDataset,
    load_dataset,
    list_datasets,
)
from repro.errors import DatasetError
from repro.graph.io import (
    read_communities,
    read_json,
    write_communities,
    write_json,
)
from repro.rng import derive_seed

__all__ = ["cached_load_dataset", "cache_key"]

_META_VERSION = 1


def cache_key(name: str, scale: float, seed: int, communities: str) -> str:
    """Stable directory name for a dataset configuration."""
    digest = derive_seed(0, "dataset-cache", name, scale, seed, communities)
    return f"{name}-s{scale}-r{seed}-{communities}-{digest:016x}"


def _spec_for(name: str):
    for spec in list_datasets():
        if spec.name == name:
            return spec
    raise DatasetError(f"unknown dataset {name!r}")


def cached_load_dataset(
    name: str,
    cache_dir: Union[str, Path],
    scale: float = 0.1,
    seed: int = 13,
    communities: str = "louvain",
) -> LoadedDataset:
    """Load a registry dataset through an on-disk cache.

    First call generates and persists; later calls with the same
    parameters deserialise. Results are identical either way (the graph
    JSON round-trip is lossless and the rumor-community id is stored).

    Args:
        name: registry dataset name.
        cache_dir: cache root (created if missing).
        scale / seed / communities: forwarded to
            :func:`repro.datasets.registry.load_dataset`.
    """
    root = Path(cache_dir)
    bucket = root / cache_key(name, scale, seed, communities)
    graph_path = bucket / "graph.json"
    membership_path = bucket / "membership.txt"
    meta_path = bucket / "meta.json"

    if graph_path.exists() and membership_path.exists() and meta_path.exists():
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise DatasetError(f"corrupt cache metadata at {meta_path}: {exc}")
        expected = {
            "version": _META_VERSION,
            "name": name,
            "scale": scale,
            "seed": seed,
            "communities": communities,
        }
        for key, value in expected.items():
            if meta.get(key) != value:
                raise DatasetError(
                    f"cache entry {bucket.name} does not match the request "
                    f"({key}: {meta.get(key)!r} != {value!r}); delete it"
                )
        graph = read_json(graph_path)
        membership = read_communities(membership_path)
        cover = CommunityStructure(graph, membership)
        return LoadedDataset(
            _spec_for(name), graph, cover, int(meta["rumor_community"])
        )

    dataset = load_dataset(name, scale=scale, seed=seed, communities=communities)
    bucket.mkdir(parents=True, exist_ok=True)
    write_json(dataset.graph, graph_path)
    write_communities(dataset.communities.membership(), membership_path)
    meta_path.write_text(
        json.dumps(
            {
                "version": _META_VERSION,
                "name": name,
                "scale": scale,
                "seed": seed,
                "communities": communities,
                "rumor_community": dataset.rumor_community,
            }
        ),
        encoding="utf-8",
    )
    return dataset
