"""Hand-built toy graphs reproducing the paper's worked examples.

* :func:`figure1_graph` — the Fig. 1 timestamp-assignment example: rumor
  originators ``x`` and ``y``; after four scripted selection steps, edge
  ``(u, w)`` carries exactly the preserved timestamps ``2_x`` and ``4_y``.
* :func:`figure2_graph` — a three-community layout in the spirit of
  Fig. 2/3: a rumor community hosting ``r1, r2`` and two R-neighbor
  communities whose boundary nodes ``p1, p2, p3`` are the bridge ends.
* :func:`two_community_toy` — a minimal deterministic two-community graph
  used across unit tests.

These return ``(graph, extras)`` with labelled nodes so tests can assert
exact structural facts against the paper's figures.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.community.structure import CommunityStructure
from repro.graph.digraph import DiGraph

__all__ = ["figure1_graph", "figure2_graph", "two_community_toy"]


def figure1_graph() -> Tuple[DiGraph, List[Tuple[str, str]]]:
    """The Fig. 1 topology plus the scripted choice sequence.

    Nodes: rumor originators ``x, y``; intermediates ``u, v, z``; target
    ``w``. The scripted schedule below makes cascade ``x`` reach ``w`` at
    step 2 and cascade ``y`` reach it at step 4, so the preserved (Fig.
    1(b)) timestamps on edge ``(u, w)`` are exactly ``{x: 2, y: 4}``.

    Returns:
        ``(graph, schedule)`` where ``schedule`` is the list of
        ``(chooser, target)`` pairs per step, flattened in step order —
        consumed by tests via a scripted chooser.
    """
    graph = DiGraph(name="figure-1")
    graph.add_edges(
        [
            ("x", "u"),
            ("y", "v"),
            ("u", "w"),
            ("v", "z"),
            ("z", "u"),
        ]
    )
    # Step 1: x -> u (timestamp 1_x), y -> v (1_y).
    # Step 2: u -> w (2_x), v -> z (2_y); x and y repeat their selections.
    # Step 3: z -> u (3_y) — cascade y reaches u.
    # Step 4: u -> w again (4_y preserved; 4_x dropped in favour of 2_x).
    schedule = [
        ("x", "u"),  # step 1
        ("y", "v"),
        ("x", "u"),  # step 2 (repeat selection, Fig. 1 narrative)
        ("y", "v"),
        ("u", "w"),
        ("v", "z"),
        ("z", "u"),  # step 3
        ("u", "w"),  # step 4
    ]
    return graph, schedule


def figure2_graph() -> Tuple[DiGraph, CommunityStructure, Dict[str, object]]:
    """A three-community instance in the spirit of Fig. 2/3.

    Layout:

    * Rumor community ``C0`` = {r1, r2, a1, a2, a3}; originators r1, r2.
    * R-neighbor community ``C1`` = {p1, p2, q1, q2, v1} — bridge ends
      p1, p2 (each has an in-edge from C0 and is rumor-reachable).
    * R-neighbor community ``C2`` = {p3, s1, s2, R1} — bridge end p3.

    ``v1`` can protect both p1 and p2 (one hop to each, inside their
    rumor-arrival budgets), ``R1`` protects p3, and no single node covers
    all three in time — so the minimum cover has size 2, mirroring Fig.
    2(b)'s optimal protector set {v1, R1}.

    Returns:
        ``(graph, communities, info)`` with ``info`` carrying
        ``rumor_seeds``, ``bridge_ends``, ``optimal_protectors`` (one
        optimum; ties exist), and ``optimal_size``.
    """
    graph = DiGraph(name="figure-2")
    # Rumor community internals: a directed ring through both originators,
    # so the two R-neighbor communities hang off *different* rumor branches
    # and no single internal node can cover all three bridge ends in time.
    graph.add_edges(
        [
            ("r1", "a1"),
            ("a1", "a2"),
            ("a2", "r2"),
            ("r2", "a3"),
            ("a3", "r1"),
        ]
    )
    # Boundary edges into C1: t_R(p1) = 2 (r1->a1->p1), t_R(p2) = 3.
    graph.add_edges([("a1", "p1"), ("a2", "p2")])
    # Boundary edge into C2: t_R(p3) = 2 (r2->a3->p3).
    graph.add_edges([("a3", "p3")])
    # C1 internals: v1 is one hop from both bridge ends.
    graph.add_edges(
        [
            ("v1", "p1"),
            ("v1", "p2"),
            ("p1", "q1"),
            ("p2", "q2"),
            ("q1", "q2"),
        ]
    )
    # C2 internals: R1 is one hop from p3.
    graph.add_edges([("R1", "p3"), ("p3", "s1"), ("s1", "s2"), ("s2", "R1")])

    communities = CommunityStructure.from_blocks(
        graph,
        [
            ["r1", "r2", "a1", "a2", "a3"],
            ["p1", "p2", "q1", "q2", "v1"],
            ["p3", "s1", "s2", "R1"],
        ],
    )
    info: Dict[str, object] = {
        "rumor_community": 0,
        "rumor_seeds": ("r1", "r2"),
        "bridge_ends": frozenset({"p1", "p2", "p3"}),
        "optimal_protectors": frozenset({"v1", "R1"}),
        "optimal_size": 2,
    }
    return graph, communities, info


def two_community_toy() -> Tuple[DiGraph, CommunityStructure, Dict[str, object]]:
    """Minimal two-community instance for fast unit tests.

    Rumor community {r, c1, c2}; neighbor community {b, d, e} with single
    bridge end ``b`` (in-edge from c1, two rumor hops away); ``d`` is one
    hop from ``b`` and can protect it.
    """
    graph = DiGraph(name="two-community-toy")
    graph.add_edges(
        [
            ("r", "c1"),
            ("c1", "c2"),
            ("c2", "r"),
            ("c1", "b"),  # boundary edge; t_R(b) = 2
            ("b", "e"),
            ("d", "b"),
            ("e", "d"),
        ]
    )
    communities = CommunityStructure.from_blocks(
        graph, [["r", "c1", "c2"], ["b", "d", "e"]]
    )
    info: Dict[str, object] = {
        "rumor_community": 0,
        "rumor_seeds": ("r",),
        "bridge_ends": frozenset({"b"}),
        # BBST of b has depth t_R(b)=2: {b} ∪ {c1, d} ∪ {r, e}, minus S_R.
        "protector_candidates": frozenset({"b", "c1", "d", "e"}),
    }
    return graph, communities, info
