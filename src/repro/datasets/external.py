"""Loading real datasets (SNAP edge lists) into the experiment harness.

The paper's actual datasets — Enron e-mail and the Hep collaboration
network — are distributed by SNAP as whitespace edge lists. This module
turns such a file (plus an optional pre-computed community sidecar) into
the same :class:`ExternalDataset` shape the synthetic registry produces,
so every experiment, example, and CLI command runs on the originals
unchanged:

    dataset = load_external("email-Enron.txt", name="enron")
    context = SelectionContext(dataset.graph,
                               dataset.rumor_community_nodes, seeds)

Collaboration networks (undirected in the source data) are symmetrised
with ``symmetrize=True``, matching Section VI.A.2.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.community.louvain import louvain
from repro.community.structure import CommunityStructure
from repro.errors import DatasetError
from repro.graph.digraph import DiGraph
from repro.graph.io import read_communities, read_edge_list
from repro.rng import RngStream

__all__ = ["ExternalDataset", "load_external"]


class ExternalDataset:
    """A real network bound to a community cover and a rumor community.

    Attributes:
        name: dataset label.
        graph: the loaded digraph.
        communities: the community cover (detected or loaded).
        rumor_community: the chosen rumor community id.
    """

    __slots__ = ("name", "graph", "communities", "rumor_community")

    def __init__(
        self,
        name: str,
        graph: DiGraph,
        communities: CommunityStructure,
        rumor_community: int,
    ) -> None:
        self.name = name
        self.graph = graph
        self.communities = communities
        self.rumor_community = rumor_community

    @property
    def rumor_community_nodes(self):
        """Node set of the rumor community."""
        return self.communities.members(self.rumor_community)

    def __repr__(self) -> str:
        return (
            f"ExternalDataset({self.name!r}, |N|={self.graph.node_count}, "
            f"|C|={self.communities.size(self.rumor_community)})"
        )


def _pick_community(
    communities: CommunityStructure, target_size: Optional[int]
) -> int:
    candidates = [
        cid for cid in communities.community_ids if communities.size(cid) >= 5
    ]
    if not candidates:
        raise DatasetError("no community with >= 5 nodes in the loaded network")
    if target_size is None:
        return max(candidates, key=lambda cid: (communities.size(cid), -cid))
    return min(candidates, key=lambda cid: (abs(communities.size(cid) - target_size), cid))


def load_external(
    edge_list_path: Union[str, Path],
    name: str = "",
    symmetrize: bool = False,
    communities_path: Optional[Union[str, Path]] = None,
    community_size: Optional[int] = None,
    seed: int = 13,
) -> ExternalDataset:
    """Load a SNAP-style edge list as a ready-to-use experiment dataset.

    Args:
        edge_list_path: whitespace ``tail head`` file, ``#`` comments OK.
        name: dataset label (defaults to the file stem).
        symmetrize: add the reverse of every edge (undirected source data,
            e.g. collaboration networks — Section VI.A.2).
        communities_path: optional ``node community`` sidecar; when
            omitted, communities are detected with Louvain as in the paper.
        community_size: pick the rumor community closest to this size
            (e.g. 308 for the paper's Hep setting); default = the largest
            community.
        seed: seed for the Louvain detection stream.

    Returns:
        An :class:`ExternalDataset`.
    """
    path = Path(edge_list_path)
    if not path.exists():
        raise DatasetError(f"edge list not found: {path}")
    label = name or path.stem
    graph = read_edge_list(path, name=label)
    if graph.edge_count == 0:
        raise DatasetError(f"{path} contains no edges")
    if symmetrize:
        for tail, head in list(graph.edges()):
            if not graph.has_edge(head, tail):
                graph.add_edge(head, tail)

    if communities_path is not None:
        membership = read_communities(communities_path)
        cover = CommunityStructure(graph, membership)
    else:
        result = louvain(graph, rng=RngStream(seed, name=f"louvain-{label}"))
        cover = CommunityStructure(graph, result.membership)

    rumor_community = _pick_community(cover, community_size)
    return ExternalDataset(label, graph, cover, rumor_community)
