"""Datasets: synthetic replicas of the paper's networks and toy graphs.

The paper evaluates on two SNAP datasets that are not redistributable
offline; :mod:`repro.datasets.synthetic` generates calibrated synthetic
replicas (see DESIGN.md §4 for the substitution argument), and
:mod:`repro.datasets.registry` names the exact configurations the
benchmarks use. :mod:`repro.datasets.toy` hand-builds the small worked
examples of the paper's Figures 1-3 for tests and documentation.
"""

from repro.datasets.registry import DatasetSpec, load_dataset, list_datasets
from repro.datasets.synthetic import SyntheticNetwork, enron_like, hep_like
from repro.datasets.toy import (
    figure1_graph,
    figure2_graph,
    two_community_toy,
)

__all__ = [
    "SyntheticNetwork",
    "enron_like",
    "hep_like",
    "DatasetSpec",
    "load_dataset",
    "list_datasets",
    "figure1_graph",
    "figure2_graph",
    "two_community_toy",
]
