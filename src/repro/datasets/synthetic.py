"""Synthetic replicas of the paper's evaluation networks.

The paper uses two SNAP datasets (Section VI.A):

* **Enron e-mail** — 36 692 nodes, 367 662 directed edges, average node
  degree 10.0; directed (i sent mail to j).
* **Hep collaboration** — 15 233 nodes, 58 891 undirected edges
  symmetrised into two directed edges each, average node degree 7.73.

Neither is redistributable in this offline environment, so
:func:`enron_like` / :func:`hep_like` generate replicas with the
statistics the algorithms are actually sensitive to (DESIGN.md §4):
directedness, average degree, heavy-tailed degrees, and heavy-tailed
community structure with sparse inter-community edges. ``scale`` shrinks
the node count (default 1/10) so every benchmark runs on a laptop; all
headline ratios are preserved.

If you have the real SNAP files, load them with
:func:`repro.graph.io.read_edge_list` and run the same experiments — every
harness accepts an arbitrary graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.community.structure import CommunityStructure
from repro.errors import DatasetError
from repro.graph.digraph import DiGraph
from repro.graph.generators import powerlaw_community_digraph
from repro.rng import RngStream
from repro.utils.validation import check_fraction, check_positive

__all__ = [
    "SyntheticNetwork",
    "enron_like",
    "hep_like",
    "large_indexed_network",
]

#: Statistics of the originals, kept here as the calibration reference.
ENRON_NODES = 36_692
ENRON_AVG_DEGREE = 10.0
HEP_NODES = 15_233
HEP_AVG_DEGREE = 7.73


class SyntheticNetwork:
    """A generated network bundled with its planted community structure.

    Attributes:
        graph: the directed graph.
        membership: node -> planted community id.
        name: dataset name.
    """

    __slots__ = ("graph", "membership", "name")

    def __init__(self, graph: DiGraph, membership: Dict[int, int], name: str) -> None:
        self.graph = graph
        self.membership = membership
        self.name = name

    def communities(self) -> CommunityStructure:
        """The planted cover as a validated :class:`CommunityStructure`."""
        return CommunityStructure(self.graph, self.membership)

    def __repr__(self) -> str:
        communities = len(set(self.membership.values()))
        return (
            f"SyntheticNetwork({self.name!r}, nodes={self.graph.node_count}, "
            f"edges={self.graph.edge_count}, communities={communities})"
        )


def _scaled(base_nodes: int, scale: float) -> int:
    nodes = int(round(base_nodes * scale))
    if nodes < 50:
        raise DatasetError(
            f"scale {scale} gives only {nodes} nodes; use scale >= {50 / base_nodes:.4f}"
        )
    return nodes


def enron_like(
    scale: float = 0.1,
    rng: Optional[RngStream] = None,
    mixing: float = 0.08,
    n_communities: Optional[int] = None,
) -> SyntheticNetwork:
    """Directed Enron-e-mail replica.

    Args:
        scale: node-count scale factor versus the original 36 692.
        rng: random stream (fixed default seed when omitted).
        mixing: fraction of edges crossing communities; 0.08 keeps
            communities dense-inside/sparse-across, matching the premise
            the paper builds on (Section IV).
        n_communities: community count; default tracks the generator's
            ``n // 120`` rule, which at scale 1 gives a few hundred
            communities — the regime the paper's Enron partitions live in
            (|C| from 80 to 2631 over 36 692 nodes).
    """
    check_positive(scale, "scale")
    rng = rng or RngStream(name="enron-like")
    nodes = _scaled(ENRON_NODES, scale)
    graph, membership = powerlaw_community_digraph(
        n=nodes,
        avg_degree=ENRON_AVG_DEGREE,
        mixing=mixing,
        rng=rng.fork("enron", nodes),
        n_communities=n_communities,
        symmetric=False,
        name=f"enron-like-{nodes}",
    )
    return SyntheticNetwork(graph, membership, name=f"enron-like-{nodes}")


def hep_like(
    scale: float = 0.1,
    rng: Optional[RngStream] = None,
    mixing: float = 0.06,
    n_communities: Optional[int] = None,
) -> SyntheticNetwork:
    """Symmetrised Hep-collaboration replica (lower degree than Enron).

    Collaboration edges are undirected; as in Section VI.A.2, each is
    represented by two directed edges, so the generator samples undirected
    pairs against half the degree budget and symmetrises.
    """
    check_positive(scale, "scale")
    rng = rng or RngStream(name="hep-like")
    nodes = _scaled(HEP_NODES, scale)
    graph, membership = powerlaw_community_digraph(
        n=nodes,
        avg_degree=HEP_AVG_DEGREE,
        mixing=mixing,
        rng=rng.fork("hep", nodes),
        n_communities=n_communities,
        symmetric=True,
        name=f"hep-like-{nodes}",
    )
    return SyntheticNetwork(graph, membership, name=f"hep-like-{nodes}")


def large_indexed_network(
    nodes: int = 1_000_000,
    avg_degree: float = 6.0,
    communities: int = 100,
    mixing: float = 0.05,
    rng: Optional[RngStream] = None,
) -> Tuple["IndexedDiGraph", List[int]]:
    """Serve-scale generator: straight to an indexed graph, no Louvain.

    The :class:`DiGraph` → Louvain → :class:`IndexedDiGraph` ingest path
    costs minutes at a million nodes; the serve benchmark only needs a
    directed graph with planted dense-inside/sparse-across communities,
    so this builds the adjacency rows directly. Communities are
    ``communities`` contiguous id blocks; each node draws
    ``avg_degree`` out-edges, a ``1 - mixing`` fraction inside its own
    block. Labels are the node ids themselves.

    Returns:
        ``(graph, community_of)`` — the indexed graph and a per-node
        community id list (``community_of[v]`` is v's block).
    """
    from repro.graph.compact import IndexedDiGraph

    check_positive(nodes, "nodes")
    check_positive(avg_degree, "avg_degree")
    check_positive(communities, "communities")
    check_fraction(mixing, "mixing")
    if communities > nodes:
        raise DatasetError(
            f"cannot plant {communities} communities over {nodes} nodes"
        )
    rng = rng or RngStream(name="large-indexed")
    raw = rng.fork("edges", nodes)._rng  # bulk draws; avoid wrapper overhead
    block = nodes // communities
    degree = max(1, int(round(avg_degree)))
    out: List[List[int]] = [[] for _ in range(nodes)]
    inn: List[List[int]] = [[] for _ in range(nodes)]
    randrange = raw.randrange
    random_ = raw.random
    for tail in range(nodes):
        lo = (tail // block) * block if tail < block * communities else 0
        hi = min(lo + block, nodes)
        row = out[tail]
        seen = set()
        for _ in range(degree):
            if random_() < mixing:
                head = randrange(nodes)
            else:
                head = lo + randrange(hi - lo)
            if head == tail or head in seen:
                continue
            seen.add(head)
            row.append(head)
            inn[head].append(tail)
    graph = IndexedDiGraph(tuple(range(nodes)), out, inn)
    community_of = [min(v // block, communities - 1) for v in range(nodes)]
    return graph, community_of
