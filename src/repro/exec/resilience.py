"""Deterministic fault injection for the parallel execution layer.

Real worker failures — an OOM kill, a wedged NFS read, a task bug — are
rare and non-reproducible, which makes the retry/timeout/degradation
machinery in :mod:`repro.exec.pool` exactly the kind of code that rots
untested. A :class:`FaultPlan` makes failures *scriptable*: it maps
``(chunk index, attempt)`` pairs to one of three actions executed inside
the worker just before the chunk's task runs:

* ``kill`` — ``os._exit``: the worker vanishes mid-chunk, exactly like
  an OOM kill (the pool repopulates the worker but the chunk's result is
  silently lost, so only a configured timeout can detect it);
* ``hang`` — sleep for the fault's duration: the chunk exceeds its
  deadline;
* ``raise`` — raise :class:`FaultInjected` from the task.

Plans parse from the ``REPRO_EXEC_FAULTS`` environment variable (so a
whole test suite can run under ambient faults — the CI fault-injection
leg does) or are passed directly to
:class:`~repro.exec.pool.ParallelExecutor`. The grammar, comma-separated::

    action@chunk[xCOUNT][:SECONDS]

    kill@2          kill the worker running chunk 2, first attempt only
    raise@0x2       raise in chunk 0 on attempts 0 and 1
    hang@1:0.5      sleep 0.5s in chunk 1, first attempt only

A fault fires only while ``attempt < count`` (count defaults to 1), so a
retried chunk eventually runs clean — which is what lets the fault
suites assert that a faulted run ends bit-identical to a serial one.
Faults are applied **only inside pool workers**, never on the inline or
degraded path (a ``kill`` there would take down the parent process).
"""

from __future__ import annotations

import os
import re
import time
from typing import Dict, Optional, Sequence

from repro.errors import ExecError

__all__ = ["FAULT_ACTIONS", "ChunkFault", "FaultInjected", "FaultPlan"]

#: environment variable holding an ambient fault plan.
FAULTS_ENV = "REPRO_EXEC_FAULTS"

#: recognised fault actions.
FAULT_ACTIONS = ("kill", "hang", "raise")

#: how long a ``hang`` sleeps when no duration is given — effectively
#: forever relative to any sane chunk timeout.
DEFAULT_HANG_SECONDS = 3600.0

_SPEC_PATTERN = re.compile(
    r"^(?P<action>kill|hang|raise)@(?P<chunk>\d+)"
    r"(?:x(?P<count>\d+))?(?::(?P<seconds>\d+(?:\.\d+)?))?$"
)


class FaultInjected(RuntimeError):
    """The exception a ``raise`` fault throws inside the worker task."""


class ChunkFault:
    """One scripted failure: ``action`` in ``chunk`` for ``count`` attempts."""

    __slots__ = ("action", "chunk", "count", "seconds")

    def __init__(
        self, action: str, chunk: int, count: int = 1,
        seconds: Optional[float] = None,
    ) -> None:
        if action not in FAULT_ACTIONS:
            raise ExecError(
                f"fault action must be one of {FAULT_ACTIONS}, got {action!r}"
            )
        self.action = action
        self.chunk = int(chunk)
        self.count = int(count)
        if self.chunk < 0 or self.count < 1:
            raise ExecError(
                f"fault needs chunk >= 0 and count >= 1, "
                f"got chunk={chunk!r} count={count!r}"
            )
        self.seconds = (
            DEFAULT_HANG_SECONDS if seconds is None else float(seconds)
        )

    def __repr__(self) -> str:
        return (
            f"ChunkFault({self.action}@{self.chunk}x{self.count}"
            f":{self.seconds})"
        )


class FaultPlan:
    """A picklable set of :class:`ChunkFault`\\ s keyed by chunk index.

    The plan ships to workers through the pool initargs; workers call
    :meth:`apply` with their chunk's ``(index, attempt)`` right before
    running the task. Because the lookup depends only on those two
    integers, fault firing is exactly as deterministic as the chunks
    themselves.
    """

    __slots__ = ("_by_chunk",)

    def __init__(self, faults: Sequence[ChunkFault] = ()) -> None:
        self._by_chunk: Dict[int, ChunkFault] = {}
        for fault in faults:
            if fault.chunk in self._by_chunk:
                raise ExecError(
                    f"duplicate fault for chunk {fault.chunk}: {fault!r}"
                )
            self._by_chunk[fault.chunk] = fault

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a comma-separated ``action@chunk[xN][:S]`` spec string."""
        faults = []
        for part in filter(None, (p.strip() for p in spec.split(","))):
            match = _SPEC_PATTERN.match(part)
            if match is None:
                raise ExecError(
                    f"bad fault spec {part!r}; expected "
                    f"action@chunk[xCOUNT][:SECONDS] with action in "
                    f"{FAULT_ACTIONS}"
                )
            faults.append(
                ChunkFault(
                    match["action"],
                    int(match["chunk"]),
                    int(match["count"] or 1),
                    float(match["seconds"]) if match["seconds"] else None,
                )
            )
        return cls(faults)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The ambient plan from ``REPRO_EXEC_FAULTS``, or ``None``."""
        spec = os.environ.get(FAULTS_ENV, "").strip()
        return cls.parse(spec) if spec else None

    def lookup(self, chunk: int, attempt: int) -> Optional[ChunkFault]:
        """The fault to fire for this ``(chunk, attempt)``, if any."""
        fault = self._by_chunk.get(chunk)
        if fault is not None and attempt < fault.count:
            return fault
        return None

    def apply(self, chunk: int, attempt: int) -> None:
        """Fire the scheduled fault, if any. Worker-side only."""
        fault = self.lookup(chunk, attempt)
        if fault is None:
            return
        if fault.action == "kill":
            # Mimic an OOM kill: no exception, no cleanup, no result.
            os._exit(86)
        if fault.action == "hang":
            time.sleep(fault.seconds)
            return
        raise FaultInjected(
            f"injected fault in chunk {chunk} (attempt {attempt})"
        )

    def __bool__(self) -> bool:
        return bool(self._by_chunk)

    def __repr__(self) -> str:
        return f"FaultPlan({sorted(self._by_chunk.values(), key=lambda f: f.chunk)!r})"
