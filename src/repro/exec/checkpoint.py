"""JSON checkpointing for the library's long loops.

Three loops dominate production wall-clock time: greedy/CELF selection
rounds, :class:`~repro.sketch.store.SketchStore` doubling, and
Monte-Carlo replica sweeps. All three are *prefix-deterministic* — the
state after round ``k`` is a pure function of the run configuration —
so a crash-interrupted run can resume from its last completed round and
still finish bit-identical to an uninterrupted one (asserted in
``tests/exec/test_checkpoint.py``; contract in ``docs/parallel.md``).

File format (``repro.ckpt/v1``)::

    {
      "schema": "repro.ckpt/v1",
      "entries": {
        "<kind>": {"key": "<run key>", "rounds": k, "state": {...}}
      }
    }

One file holds one entry per loop *kind* (``greedy``, ``sketch``,
``mc``), so a ``repro simulate --checkpoint run.ckpt`` pipeline can
checkpoint its selection stage and its evaluation stage side by side.
Each entry carries the :func:`run_key` fingerprint of the configuration
that wrote it; loading an entry whose key differs from the resuming
run's raises :class:`~repro.errors.CheckpointError` rather than quietly
resuming from foreign state. Writes are atomic (temp file +
``os.replace``), so a crash mid-save leaves the previous checkpoint
intact.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional, Union

from repro.errors import CheckpointError

__all__ = ["CHECKPOINT_SCHEMA", "CheckpointStore", "as_store", "run_key"]

#: schema tag written into (and required of) every checkpoint file.
CHECKPOINT_SCHEMA = "repro.ckpt/v1"


def run_key(**parts: Any) -> str:
    """Deterministic fingerprint of a run configuration.

    Keyword arguments are serialised to canonical JSON (sorted keys,
    ``repr`` fallback for non-JSON values) and hashed; two runs share a
    key exactly when every named part matches. Callers deliberately
    *omit* parameters the loop is prefix-consistent in — greedy's
    ``budget``, Monte-Carlo ``runs`` — so a checkpoint from a shorter
    run seeds a longer one.
    """
    canonical = json.dumps(parts, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class CheckpointStore:
    """Reader/writer for one ``repro.ckpt/v1`` file.

    Args:
        path: the checkpoint file (created on first :meth:`save`).
        resume: when ``False`` (a fresh run that only *writes*
            checkpoints), :meth:`load` always returns ``None``; when
            ``True``, :meth:`load` returns the saved entry for a kind —
            raising :class:`CheckpointError` if its run key does not
            match the resuming configuration.
    """

    __slots__ = ("path", "resume")

    def __init__(self, path: Union[str, os.PathLike], resume: bool = True) -> None:
        self.path = os.fspath(path)
        self.resume = bool(resume)

    # -- IO ---------------------------------------------------------------------

    def _read(self) -> Dict[str, Any]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"cannot read checkpoint {self.path!r}: {exc}"
            ) from exc
        if (
            not isinstance(document, dict)
            or document.get("schema") != CHECKPOINT_SCHEMA
            or not isinstance(document.get("entries"), dict)
        ):
            raise CheckpointError(
                f"{self.path!r} is not a {CHECKPOINT_SCHEMA} checkpoint"
            )
        return document

    def _read_or_empty(self) -> Dict[str, Any]:
        if not os.path.exists(self.path):
            return {"schema": CHECKPOINT_SCHEMA, "entries": {}}
        return self._read()

    # -- API --------------------------------------------------------------------

    def load(self, kind: str, key: str) -> Optional[Dict[str, Any]]:
        """The saved entry for ``kind`` (``{"key", "rounds", "state"}``).

        Returns ``None`` when not resuming, when the file does not exist
        yet, or when it holds no entry of this kind. A key mismatch —
        the file was written by a differently-configured run — raises
        :class:`CheckpointError`.
        """
        if not self.resume or not os.path.exists(self.path):
            return None
        entry = self._read()["entries"].get(kind)
        if entry is None:
            return None
        if entry.get("key") != key:
            raise CheckpointError(
                f"checkpoint {self.path!r} entry {kind!r} was written by a "
                f"different run configuration (key {entry.get('key')!r} != "
                f"{key!r}); delete the file or drop --resume"
            )
        return entry

    def save(
        self, kind: str, key: str, state: Dict[str, Any], rounds: int
    ) -> None:
        """Atomically write/replace the entry for ``kind``.

        Other kinds' entries are preserved, so selection and evaluation
        stages can share one file. ``state`` must be JSON-serialisable.
        """
        document = self._read_or_empty()
        document["entries"][kind] = {
            "key": key,
            "rounds": int(rounds),
            "state": state,
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(self.path) + ".", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def clear(self) -> None:
        """Delete the checkpoint file (no-op when absent)."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:
        return f"CheckpointStore(path={self.path!r}, resume={self.resume})"


def as_store(
    checkpoint: Union[str, os.PathLike, CheckpointStore, None]
) -> Optional[CheckpointStore]:
    """Normalise a ``checkpoint`` argument to a store (or ``None``).

    A bare path gets ``resume=True`` — the friendly library default:
    point at a file, and the run resumes from it when it exists and
    matches, else starts fresh and writes it.
    """
    if checkpoint is None or isinstance(checkpoint, CheckpointStore):
        return checkpoint
    return CheckpointStore(checkpoint, resume=True)
