"""Graph publication: ship one immutable graph to many pool workers.

The graphs the simulators and samplers traverse are frozen
:class:`~repro.graph.compact.IndexedDiGraph` snapshots. Pickling one
into every worker costs O(E) bytes per worker *through a pipe*; for the
enron-scale replicas that serialization dominates pool start-up. With
NumPy available the graph's :class:`~repro.graph.compact.CSRArrays`
export is instead written once into ``multiprocessing.shared_memory``
segments (``indptr``/``indices`` as int64, ``weights`` as float64) and
workers rebuild the graph from the mapped arrays — the only pickled
payload is the label tuple and three segment names. The copy-out stays
in NumPy: each worker materialises ndarray-backed CSR arrays (one
``memcpy`` per segment) and hands them to
:meth:`~repro.graph.compact.IndexedDiGraph.from_csr`'s vectorized
fast path, so rebuilding never round-trips through O(E) Python lists.

Without NumPy the handle simply carries the graph and pickles once per
worker (the PR-1 initializer behavior) — same results, slower start-up.

Round-tripping is exact: ``materialize_graph(publish_graph(g).handle)``
reproduces ``g``'s labels, adjacency, and weights bit-for-bit (float64
survives the segment unchanged), which is what keeps parallel runs
bit-identical to serial ones.

Segment lifetime: the parent owns the segments for the pool's lifetime
and calls :meth:`GraphPublication.close` after the pool joins. Cleanup
is additionally registered through ``weakref.finalize``, so the
segments are unlinked even when the parent dies between ``publish`` and
``close`` (interpreter teardown runs finalizers) — a leaked segment
would otherwise survive in ``/dev/shm`` until reboot.
"""

from __future__ import annotations

import weakref
from typing import List, Optional, Tuple

from repro.errors import ExecError
from repro.graph.compact import IndexedDiGraph

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = [
    "SHARE_MODES",
    "GraphPublication",
    "publish_graph",
    "materialize_graph",
]

#: accepted ``share`` modes: ``"auto"`` picks shm when NumPy is present.
SHARE_MODES = ("auto", "shm", "pickle")


class _PickleHandle:
    """Fallback handle: the graph itself rides in the initargs pickle."""

    __slots__ = ("graph",)

    def __init__(self, graph: IndexedDiGraph) -> None:
        self.graph = graph


class _ShmHandle:
    """Names and shapes of the shared CSR segments (cheap to pickle)."""

    __slots__ = ("labels", "node_count", "edge_count", "segment_names")

    def __init__(
        self,
        labels: Tuple[object, ...],
        node_count: int,
        edge_count: int,
        segment_names: Tuple[str, str, str],
    ) -> None:
        self.labels = labels
        self.node_count = node_count
        self.edge_count = edge_count
        self.segment_names = segment_names


def _release_segments(segments: List[object]) -> None:
    """Close and unlink segments (module-level so finalizers can hold it)."""
    while segments:
        segment = segments.pop()
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class GraphPublication:
    """Owns the shared segments backing a published graph.

    The parent keeps the publication alive for the pool's lifetime and
    calls :meth:`close` after the pool has joined; workers only ever
    attach read-only and close their mapping. Usable as a context
    manager. Cleanup is backed by ``weakref.finalize``: if the parent
    never reaches ``close()`` (crash, ``sys.exit``, dropped reference),
    the segments are still unlinked at garbage collection or interpreter
    exit rather than leaking in ``/dev/shm``.
    """

    __slots__ = ("handle", "_finalizer", "__weakref__")

    def __init__(self, handle, segments) -> None:
        self.handle = handle
        # The callback must not reference self (that would keep the
        # publication alive forever); it owns the segment list directly.
        self._finalizer = weakref.finalize(
            self, _release_segments, list(segments)
        )

    def close(self) -> None:
        """Release and unlink every owned segment (idempotent)."""
        # Calling a finalizer runs it at most once, which is exactly the
        # idempotence close() promises.
        self._finalizer()

    def __enter__(self) -> "GraphPublication":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _share_segments(graph: IndexedDiGraph) -> GraphPublication:
    from multiprocessing import shared_memory

    csr = graph.csr()
    segments = []
    names = []
    try:
        for values, dtype in (
            (csr.indptr, np.int64),
            (csr.indices, np.int64),
            (csr.weights, np.float64),
        ):
            source = np.asarray(values, dtype=dtype)
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, source.nbytes)
            )
            view = np.ndarray(source.shape, dtype=dtype, buffer=segment.buf)
            view[:] = source
            segments.append(segment)
            names.append(segment.name)
    except BaseException:
        _release_segments(segments)
        raise
    handle = _ShmHandle(
        graph.labels, graph.node_count, graph.edge_count, tuple(names)
    )
    return GraphPublication(handle, segments)


def publish_graph(
    graph: Optional[IndexedDiGraph], share: str = "auto"
) -> GraphPublication:
    """Prepare ``graph`` for distribution to pool workers.

    Args:
        graph: the graph to publish, or ``None`` (graph-free workloads).
        share: ``"shm"`` (requires NumPy), ``"pickle"``, or ``"auto"``
            (shm when NumPy is importable, else pickle).

    Returns:
        A :class:`GraphPublication` whose picklable ``handle`` goes into
        the pool initargs; the publication must stay open until the pool
        has joined, then be :meth:`~GraphPublication.close`\\ d.
    """
    if share not in SHARE_MODES:
        raise ExecError(f"share must be one of {SHARE_MODES}, got {share!r}")
    if graph is None:
        return GraphPublication(None, ())
    if share == "pickle" or (share == "auto" and np is None):
        return GraphPublication(_PickleHandle(graph), ())
    if np is None:
        raise ExecError(
            "share='shm' requires NumPy; install the 'perf' extra or use "
            "share='pickle'"
        )
    return _share_segments(graph)


def materialize_graph(handle) -> Optional[IndexedDiGraph]:
    """Rebuild the published graph inside a worker process.

    Shared-memory handles attach each segment, copy the arrays out **as
    NumPy arrays**, and close the mapping immediately (the parent owns
    the segment lifetime); the rebuilt graph's CSR export stays
    ndarray-backed, so NumPy-kernel workers never pay an O(E) Python
    list rebuild. Pickle handles just return the graph they carry.
    """
    if handle is None:
        return None
    if isinstance(handle, _PickleHandle):
        return handle.graph
    if not isinstance(handle, _ShmHandle):
        raise ExecError(f"not a graph handle: {handle!r}")
    if np is None:  # pragma: no cover - shm handles imply NumPy existed
        raise ExecError("cannot attach shared CSR segments without NumPy")
    from multiprocessing import shared_memory

    shapes = (handle.node_count + 1, handle.edge_count, handle.edge_count)
    dtypes = (np.int64, np.int64, np.float64)
    arrays = []
    attached = []
    try:
        for name, shape, dtype in zip(handle.segment_names, shapes, dtypes):
            segment = shared_memory.SharedMemory(name=name)
            attached.append(segment)
            view = np.ndarray((shape,), dtype=dtype, buffer=segment.buf)
            # One memcpy detaches the data before the buffer closes —
            # never .tolist(), which would rebuild O(E) Python objects
            # per worker and defeat the shm fast path.
            arrays.append(np.array(view, copy=True))
    finally:
        for segment in attached:
            segment.close()
    indptr, indices, weights = arrays
    return IndexedDiGraph.from_csr(handle.labels, indptr, indices, weights)
