"""Shared-memory multicore execution layer.

``repro.exec`` fans deterministic work out over a process pool while
keeping results **bit-identical** to a serial run:

* :func:`~repro.exec.shm.publish_graph` ships one immutable
  :class:`~repro.graph.compact.IndexedDiGraph` to every worker — through
  ``multiprocessing.shared_memory`` CSR segments when NumPy is present,
  or pickled once per worker otherwise;
* :class:`~repro.exec.pool.ParallelExecutor` schedules contiguous,
  index-ordered chunks, merges results in chunk order, and folds worker
  metrics back through the :mod:`repro.obs` snapshot-and-merge protocol.

See ``docs/parallel.md`` for the determinism contract.
"""

from repro.exec.pool import ParallelExecutor, resolve_workers, split_chunks
from repro.exec.shm import GraphPublication, materialize_graph, publish_graph

__all__ = [
    "GraphPublication",
    "ParallelExecutor",
    "materialize_graph",
    "publish_graph",
    "resolve_workers",
    "split_chunks",
]
