"""Shared-memory multicore execution layer.

``repro.exec`` fans deterministic work out over a process pool while
keeping results **bit-identical** to a serial run:

* :func:`~repro.exec.shm.publish_graph` ships one immutable
  :class:`~repro.graph.compact.IndexedDiGraph` to every worker — through
  ``multiprocessing.shared_memory`` CSR segments when NumPy is present,
  or pickled once per worker otherwise;
* :class:`~repro.exec.pool.ParallelExecutor` owns one **long-lived**
  worker pool (created lazily, reused across maps and subsystems until
  ``close()``), pins the graph publication for the pool's lifetime,
  caches per-worker task state between maps, schedules contiguous,
  index-ordered chunks (auto-tuned from observed per-item cost), merges
  results in chunk order, and folds worker metrics back through the
  :mod:`repro.obs` snapshot-and-merge protocol — with per-chunk
  timeouts, deterministic retries on recycled workers, and graceful
  degradation to inline execution when the pool keeps failing;
* :class:`~repro.exec.resilience.FaultPlan` scripts worker failures
  (kill/hang/raise) for the fault-injection test suites, ambiently via
  the ``REPRO_EXEC_FAULTS`` environment variable;
* :class:`~repro.exec.checkpoint.CheckpointStore` persists the long
  loops' round state as ``repro.ckpt/v1`` JSON so interrupted runs
  resume bit-identical.

See ``docs/parallel.md`` for the determinism contract and the failure
semantics.
"""

from repro.exec.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    as_store,
    run_key,
)
from repro.exec.pool import (
    ParallelExecutor,
    resolve_workers,
    shutdown_shared_pools,
    split_chunks,
    split_even,
)
from repro.exec.resilience import ChunkFault, FaultInjected, FaultPlan
from repro.exec.shm import GraphPublication, materialize_graph, publish_graph

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointStore",
    "ChunkFault",
    "FaultInjected",
    "FaultPlan",
    "GraphPublication",
    "ParallelExecutor",
    "as_store",
    "materialize_graph",
    "publish_graph",
    "resolve_workers",
    "run_key",
    "shutdown_shared_pools",
    "split_chunks",
    "split_even",
]
