"""Deterministic chunked scheduling over a process pool.

The execution contract every consumer (batched σ̂ evaluation, RR-set
sampling, Monte-Carlo replicas) relies on:

* **Work item ``i`` is self-describing.** Chunks carry the items
  themselves (candidate id lists, world indices, replica indices) and
  every task derives its randomness from the item — ``rng.replica(i)``,
  world stream ``i`` — never from which worker runs it or in what order.
* **Chunks are contiguous and merged in index order.** ``pool.map``
  preserves input order, so flattening the chunk results reproduces the
  serial iteration order exactly; serial and parallel runs are
  bit-identical.
* **Worker set-up work is never counted.** The initializer installs the
  null metrics registry and runs the consumer's ``setup`` under it:
  redundant per-worker preparation (attaching the graph, re-sampling the
  shared world batch, re-running a baseline race) would otherwise
  multiply work counters by the worker count. Each *chunk* then runs
  under a fresh registry whose snapshot ships home and is merged in
  chunk order — total counters equal a serial run's.

The pool start method is the platform default (``fork`` on Linux);
worker state lives in the module-level ``_WORKER_STATE`` dict, which the
initializer clears first — a forked worker inherits the parent's (or a
previous pool's) module state, and stale entries must never leak into a
new pool (regression-tested in ``tests/exec/test_pool.py``).
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExecError
from repro.exec.shm import materialize_graph, publish_graph
from repro.obs.registry import MetricsRegistry, metrics, set_registry, use_registry

__all__ = ["ParallelExecutor", "resolve_workers", "split_chunks"]

#: items each worker should see across a map, on average; more chunks
#: than workers smooths imbalance without shrinking chunks to nothing.
CHUNKS_PER_WORKER = 4

# Per-worker state installed by the pool initializer. Module-level so
# the (picklable) _run_chunk function can reach it.
_WORKER_STATE: Dict[str, Any] = {}


def resolve_workers(
    workers: Union[int, str, None], items: Optional[int] = None
) -> int:
    """Turn a worker request into a concrete count.

    ``None`` and ``1`` mean serial; ``0`` and ``"auto"`` mean one worker
    per CPU; any other positive int is taken literally. When ``items``
    is given the count is capped by it (no point spawning idle workers).
    """
    if workers is None:
        count = 1
    elif workers == "auto" or workers == 0:
        count = multiprocessing.cpu_count()
    else:
        count = int(workers)
        if count < 0:
            raise ExecError(f"workers must be >= 0, got {workers!r}")
    if items is not None:
        count = min(count, items)
    return max(1, count)


def split_chunks(
    items: Sequence[Any],
    worker_count: int,
    per_worker: int = CHUNKS_PER_WORKER,
) -> List[List[Any]]:
    """Deterministic contiguous split of ``items`` into balanced chunks.

    Aims for ``worker_count * per_worker`` chunks (never more than
    ``len(items)``); sizes differ by at most one and concatenating the
    chunks reproduces ``items`` exactly — the property the executor's
    index-order merge relies on.
    """
    items = list(items)
    if not items:
        return []
    chunk_count = max(1, min(len(items), worker_count * per_worker))
    base, extra = divmod(len(items), chunk_count)
    chunks: List[List[Any]] = []
    start = 0
    for position in range(chunk_count):
        size = base + (1 if position < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


def _init_worker(setup, task, payload, graph_handle, collect) -> None:
    """Pool initializer: build this worker's state from the shipped payload."""
    # A forked worker inherits the parent's module state (and, if the
    # process hosted an earlier pool, its leftovers): start clean so no
    # previous graph or task can leak into this pool.
    _WORKER_STATE.clear()
    set_registry(None)  # set-up work is uncounted; chunks opt back in
    graph = materialize_graph(graph_handle)
    state = setup(graph, payload)
    _WORKER_STATE["task"] = task
    _WORKER_STATE["state"] = state
    _WORKER_STATE["collect"] = bool(collect)


def _run_chunk(chunk) -> Tuple[Any, Optional[Dict[str, Any]]]:
    """Worker: run one chunk; return (result, metrics snapshot or None)."""
    task = _WORKER_STATE["task"]
    state = _WORKER_STATE["state"]
    if not _WORKER_STATE["collect"]:
        return task(state, chunk), None
    registry = MetricsRegistry()
    with use_registry(registry):
        result = task(state, chunk)
    return result, registry.snapshot()


class ParallelExecutor:
    """Deterministic fan-out of chunked work over a process pool.

    Args:
        workers: worker request (see :func:`resolve_workers`); ``None``
            or ``1`` runs everything inline with zero pool overhead.
        share: graph publication mode (see
            :func:`~repro.exec.shm.publish_graph`).

    The consumer supplies two picklable module-level functions:

    * ``setup(graph, payload) -> state`` — runs once per worker under
      the null registry (uncounted);
    * ``task(state, chunk) -> result`` — runs once per chunk under a
      fresh registry whose snapshot is merged home in chunk order.
    """

    __slots__ = ("workers", "share")

    def __init__(
        self, workers: Union[int, str, None] = None, share: str = "auto"
    ) -> None:
        self.workers = workers
        self.share = share

    def map_chunks(
        self,
        setup: Callable[[Any, Any], Any],
        task: Callable[[Any, Any], Any],
        payload: Any,
        chunks: Sequence[Any],
        graph=None,
    ) -> List[Any]:
        """Run ``task`` over every chunk; results come back in chunk order.

        Serial (one effective worker) and parallel execution produce
        identical result lists and — via snapshot merging — identical
        metric totals in the caller's registry.
        """
        chunks = list(chunks)
        if not chunks:
            return []
        registry = metrics()
        worker_count = resolve_workers(self.workers, len(chunks))
        if worker_count <= 1:
            # Inline path: same code, no pool. Set-up stays uncounted
            # (exactly as in a worker); chunks run under the caller's
            # registry directly, which is what a serial run does.
            with use_registry(None):
                state = setup(graph, payload)
            return [task(state, chunk) for chunk in chunks]

        publication = publish_graph(graph, self.share)
        try:
            with registry.timer("time.exec.pool"):
                with multiprocessing.Pool(
                    processes=worker_count,
                    initializer=_init_worker,
                    initargs=(
                        setup, task, payload, publication.handle,
                        registry.enabled,
                    ),
                ) as pool:
                    pairs = pool.map(_run_chunk, chunks)
        finally:
            publication.close()
        results = []
        for result, snapshot in pairs:  # chunk order == index order
            results.append(result)
            if snapshot is not None:
                registry.merge_snapshot(snapshot)
        return results

    def __repr__(self) -> str:
        return f"ParallelExecutor(workers={self.workers!r}, share={self.share!r})"
