"""Deterministic chunked scheduling over a process pool.

The execution contract every consumer (batched σ̂ evaluation, RR-set
sampling, Monte-Carlo replicas) relies on:

* **Work item ``i`` is self-describing.** Chunks carry the items
  themselves (candidate id lists, world indices, replica indices) and
  every task derives its randomness from the item — ``rng.replica(i)``,
  world stream ``i`` — never from which worker runs it or in what order.
* **Chunks are contiguous and merged in index order.** Results are
  collected by chunk index and flattened in ascending index order, so
  the serial iteration order is reproduced exactly; serial and parallel
  runs are bit-identical.
* **Worker set-up work is never counted.** The initializer installs the
  null metrics registry and runs the consumer's ``setup`` under it:
  redundant per-worker preparation (attaching the graph, re-sampling the
  shared world batch, re-running a baseline race) would otherwise
  multiply work counters by the worker count. Each *chunk* then runs
  under a fresh registry whose snapshot ships home and is merged in
  chunk order — total counters equal a serial run's.

Failure semantics (docs/parallel.md, "Failure semantics"):

* a chunk whose task raises is retried up to ``retries`` times — chunks
  are self-describing, so a retry is bit-identical to the first attempt
  — and then surfaces as :class:`~repro.errors.ExecError` naming the
  chunk index and a preview of its items, chaining the original;
* with a ``timeout`` configured, an attempt that produces no result
  within ``timeout`` seconds of the previous completion (a hung task,
  or a worker killed mid-chunk — the pool loses such a task silently
  either way) is abandoned and its missing chunks retried in a fresh
  pool;
* when pool-level failures outlive the retry budget the executor
  *degrades*: the still-missing chunks run inline in the parent, which
  is bit-identical by the same self-describing-chunks argument. Only
  deterministic task errors (a chunk that raised on every attempt with
  no pool failure in sight) raise instead of degrading.

Retry/timeout/degradation events increment ``exec.chunks.retried``,
``exec.chunks.timeout``, and ``exec.degraded``; the counters are created
only when the events actually occur, so an unfaulted parallel run's
counter *set* still equals a serial run's. Fault injection for tests
comes from :mod:`repro.exec.resilience` (``REPRO_EXEC_FAULTS`` or an
explicit :class:`~repro.exec.resilience.FaultPlan`).

The pool start method is the platform default (``fork`` on Linux);
worker state lives in the module-level ``_WORKER_STATE`` dict, which the
initializer clears first — a forked worker inherits the parent's (or a
previous pool's) module state, and stale entries must never leak into a
new pool (regression-tested in ``tests/exec/test_pool.py``).
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExecError
from repro.exec.resilience import FaultPlan
from repro.exec.shm import materialize_graph, publish_graph
from repro.obs.registry import MetricsRegistry, metrics, set_registry, use_registry

__all__ = ["ParallelExecutor", "resolve_workers", "split_chunks"]

#: items each worker should see across a map, on average; more chunks
#: than workers smooths imbalance without shrinking chunks to nothing.
CHUNKS_PER_WORKER = 4

#: default retry budget per map (attempts = retries + 1).
DEFAULT_RETRIES = 2

# Per-worker state installed by the pool initializer. Module-level so
# the (picklable) _run_chunk function can reach it.
_WORKER_STATE: Dict[str, Any] = {}


def resolve_workers(
    workers: Union[int, str, None], items: Optional[int] = None
) -> int:
    """Turn a worker request into a concrete count.

    ``None`` and ``1`` mean serial; ``0`` and ``"auto"`` mean one worker
    per CPU; any other positive int is taken literally. When ``items``
    is given the count is capped by it (no point spawning idle workers).
    """
    if workers is None:
        count = 1
    elif workers == "auto" or workers == 0:
        count = multiprocessing.cpu_count()
    else:
        count = int(workers)
        if count < 0:
            raise ExecError(f"workers must be >= 0, got {workers!r}")
    if items is not None:
        count = min(count, items)
    return max(1, count)


def split_chunks(
    items: Sequence[Any],
    worker_count: int,
    per_worker: int = CHUNKS_PER_WORKER,
) -> List[List[Any]]:
    """Deterministic contiguous split of ``items`` into balanced chunks.

    Aims for ``worker_count * per_worker`` chunks (never more than
    ``len(items)``); sizes differ by at most one and concatenating the
    chunks reproduces ``items`` exactly — the property the executor's
    index-order merge relies on.
    """
    items = list(items)
    if not items:
        return []
    chunk_count = max(1, min(len(items), worker_count * per_worker))
    base, extra = divmod(len(items), chunk_count)
    chunks: List[List[Any]] = []
    start = 0
    for position in range(chunk_count):
        size = base + (1 if position < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


def _preview_items(chunk) -> str:
    """Short human-readable preview of a chunk's items for error messages."""
    try:
        items = list(chunk)
    except TypeError:
        return repr(chunk)
    shown = ", ".join(repr(item) for item in items[:3])
    if len(items) > 3:
        shown += f", ... ({len(items)} items)"
    return f"[{shown}]"


def _chunk_error(
    index: int, chunk, attempts: int, cause: Optional[BaseException]
) -> ExecError:
    """Build the :class:`ExecError` a failed chunk surfaces as."""
    what = (
        f"{type(cause).__name__}: {cause}" if cause is not None
        else "timed out or its worker was lost"
    )
    error = ExecError(
        f"chunk {index} (items {_preview_items(chunk)}) failed after "
        f"{attempts} attempt(s): {what}"
    )
    error.__cause__ = cause
    return error


def _shippable(exc: BaseException) -> BaseException:
    """An exception safe to send back through the pool's result pipe."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ExecError(f"unpicklable task error {type(exc).__name__}: {exc}")


def _init_worker(setup, task, payload, graph_handle, collect, faults=None) -> None:
    """Pool initializer: build this worker's state from the shipped payload."""
    # A forked worker inherits the parent's module state (and, if the
    # process hosted an earlier pool, its leftovers): start clean so no
    # previous graph or task can leak into this pool.
    _WORKER_STATE.clear()
    set_registry(None)  # set-up work is uncounted; chunks opt back in
    graph = materialize_graph(graph_handle)
    state = setup(graph, payload)
    _WORKER_STATE["task"] = task
    _WORKER_STATE["state"] = state
    _WORKER_STATE["collect"] = bool(collect)
    _WORKER_STATE["faults"] = faults


def _run_chunk(message) -> Tuple[int, Optional[BaseException], Any, Optional[dict]]:
    """Worker: run one ``(index, attempt, chunk)`` message.

    Returns ``(index, error, result, snapshot)``. Task exceptions come
    back as values rather than raising through the pool: the parent
    needs the chunk index to retry deterministically, and
    ``imap_unordered`` would otherwise re-raise with no indication of
    which chunk failed. A failed attempt ships no snapshot — partially
    counted work must not pollute the merged totals.
    """
    index, attempt, chunk = message
    try:
        faults: Optional[FaultPlan] = _WORKER_STATE.get("faults")
        if faults is not None:
            faults.apply(index, attempt)
        task = _WORKER_STATE["task"]
        state = _WORKER_STATE["state"]
        if not _WORKER_STATE["collect"]:
            return index, None, task(state, chunk), None
        registry = MetricsRegistry()
        with use_registry(registry):
            result = task(state, chunk)
        return index, None, result, registry.snapshot()
    except Exception as exc:
        return index, _shippable(exc), None, None


class ParallelExecutor:
    """Deterministic, fault-tolerant fan-out of chunked work over a pool.

    Args:
        workers: worker request (see :func:`resolve_workers`); ``None``
            or ``1`` runs everything inline with zero pool overhead.
        share: graph publication mode (see
            :func:`~repro.exec.shm.publish_graph`).
        timeout: per-chunk deadline in seconds, measured from the
            previous completed chunk (``None`` = wait forever, the
            pre-resilience behavior). A timeout is also how a worker
            killed mid-chunk is detected — the pool loses such a task
            silently, so without a timeout the map blocks forever.
        retries: how many times failed chunks are re-executed before the
            executor gives up on the pool (``None`` = the default
            budget of :data:`DEFAULT_RETRIES`). Retries are
            bit-identical because chunks are self-describing.
        degrade: whether pool-level failures that outlive the retry
            budget fall back to running the missing chunks inline in the
            parent (``True``, the default) or raise.
        faults: an explicit :class:`~repro.exec.resilience.FaultPlan`
            for tests; ``None`` reads the ambient ``REPRO_EXEC_FAULTS``
            plan. Faults fire only inside pool workers, never on the
            inline or degraded path.

    The consumer supplies two picklable module-level functions:

    * ``setup(graph, payload) -> state`` — runs once per worker under
      the null registry (uncounted);
    * ``task(state, chunk) -> result`` — runs once per chunk under a
      fresh registry whose snapshot is merged home in chunk order.
    """

    __slots__ = ("workers", "share", "timeout", "retries", "degrade", "faults")

    def __init__(
        self,
        workers: Union[int, str, None] = None,
        share: str = "auto",
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        degrade: bool = True,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.workers = workers
        self.share = share
        if timeout is not None and float(timeout) <= 0:
            raise ExecError(f"timeout must be > 0 seconds, got {timeout!r}")
        self.timeout = None if timeout is None else float(timeout)
        retries = DEFAULT_RETRIES if retries is None else int(retries)
        if retries < 0:
            raise ExecError(f"retries must be >= 0, got {retries!r}")
        self.retries = retries
        self.degrade = bool(degrade)
        self.faults = faults

    # -- the map ----------------------------------------------------------------

    def map_chunks(
        self,
        setup: Callable[[Any, Any], Any],
        task: Callable[[Any, Any], Any],
        payload: Any,
        chunks: Sequence[Any],
        graph=None,
    ) -> List[Any]:
        """Run ``task`` over every chunk; results come back in chunk order.

        Serial (one effective worker) and parallel execution produce
        identical result lists and — via snapshot merging — identical
        metric totals in the caller's registry, whether or not chunks
        were retried, timed out, or degraded along the way.
        """
        chunks = list(chunks)
        if not chunks:
            return []
        registry = metrics()
        worker_count = resolve_workers(self.workers, len(chunks))
        if worker_count <= 1:
            # Inline path: same code, no pool. Set-up stays uncounted
            # (exactly as in a worker); chunks run under the caller's
            # registry directly, which is what a serial run does.
            with use_registry(None):
                state = setup(graph, payload)
            return [
                self._run_inline(task, state, index, chunk)
                for index, chunk in enumerate(chunks)
            ]

        faults = self.faults if self.faults is not None else FaultPlan.from_env()
        results: Dict[int, Any] = {}
        snapshots: Dict[int, Optional[dict]] = {}
        pending: Dict[int, Any] = dict(enumerate(chunks))
        last_errors: Dict[int, BaseException] = {}
        pool_failures = 0

        publication = publish_graph(graph, self.share)
        try:
            with registry.timer("time.exec.pool"):
                for attempt in range(self.retries + 1):
                    if not pending:
                        break
                    if attempt > 0:
                        registry.counter("exec.chunks.retried").add(len(pending))
                    pool_failures += self._run_attempt(
                        setup, task, payload, publication.handle, registry,
                        faults, worker_count, attempt, pending, results,
                        snapshots, last_errors,
                    )
        finally:
            publication.close()

        if pending:
            first = min(pending)
            # Degrade only when the *pool* misbehaved: a chunk that
            # raised deterministically on every attempt would fail
            # inline too, so surface it with its context instead.
            task_failure_only = pool_failures == 0 and all(
                index in last_errors for index in pending
            )
            if task_failure_only or not self.degrade:
                raise _chunk_error(
                    first, pending[first], self.retries + 1,
                    last_errors.get(first),
                )
            registry.counter("exec.degraded").add(1)
            with use_registry(None):
                state = setup(graph, payload)
            for index in sorted(pending):
                results[index] = self._run_inline(
                    task, state, index, pending[index]
                )
                snapshots[index] = None
            pending.clear()

        ordered: List[Any] = []
        for index in range(len(chunks)):  # merge in chunk (= serial) order
            ordered.append(results[index])
            snapshot = snapshots.get(index)
            if snapshot is not None:
                registry.merge_snapshot(snapshot)
        return ordered

    def _run_attempt(
        self, setup, task, payload, handle, registry, faults, worker_count,
        attempt, pending, results, snapshots, last_errors,
    ) -> int:
        """One pool pass over the pending chunks.

        Completed chunks move from ``pending`` into ``results``; task
        errors are recorded in ``last_errors`` (the chunk stays
        pending). Returns the number of pool-level failures observed
        (0 or 1): on a timeout the whole attempt is abandoned — the
        pool's workers may be hung or dead — and the next attempt runs
        everything still pending in a fresh pool.
        """
        messages = [(i, attempt, pending[i]) for i in sorted(pending)]
        pool = multiprocessing.Pool(
            processes=min(worker_count, len(messages)),
            initializer=_init_worker,
            initargs=(setup, task, payload, handle, registry.enabled, faults),
        )
        received = 0
        try:
            iterator = pool.imap_unordered(_run_chunk, messages)
            for _ in range(len(messages)):
                try:
                    index, error, result, snapshot = iterator.next(self.timeout)
                except multiprocessing.TimeoutError:
                    registry.counter("exec.chunks.timeout").add(
                        len(messages) - received
                    )
                    return 1
                received += 1
                if error is not None:
                    last_errors[index] = error
                    continue
                results[index] = result
                snapshots[index] = snapshot
                del pending[index]
        finally:
            # terminate, not close: hung or fault-killed workers would
            # make a graceful join wait forever.
            pool.terminate()
            pool.join()
        return 0

    @staticmethod
    def _run_inline(task, state, index, chunk):
        """Run one chunk in-process, wrapping task errors with context."""
        try:
            return task(state, chunk)
        except ExecError:
            raise
        except Exception as exc:
            raise _chunk_error(index, chunk, 1, exc) from exc

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(workers={self.workers!r}, share={self.share!r}, "
            f"timeout={self.timeout}, retries={self.retries}, "
            f"degrade={self.degrade})"
        )
