"""Deterministic chunked scheduling over a persistent process pool.

The execution contract every consumer (batched σ̂ evaluation, RR-set
sampling, Monte-Carlo replicas, gossip replicas) relies on:

* **Work item ``i`` is self-describing.** Chunks carry the items
  themselves (candidate id lists, world indices, replica indices) and
  every task derives its randomness from the item — ``rng.replica(i)``,
  world stream ``i`` — never from which worker runs it or in what order.
* **Chunks are contiguous and merged in index order.** Results are
  collected by chunk index and flattened in ascending index order, so
  the serial iteration order is reproduced exactly; serial and parallel
  runs are bit-identical. Chunk *granularity* is therefore free to vary
  (see "chunk auto-tuning" below) without changing any result or any
  merged counter total.
* **Worker set-up work is never counted.** Worker processes install the
  null metrics registry and run the consumer's ``setup`` under it:
  redundant per-worker preparation (attaching the graph, re-sampling the
  shared world batch, re-running a baseline race) would otherwise
  multiply work counters by the worker count. Each *chunk* then runs
  under a fresh registry whose snapshot ships home and is merged in
  chunk order — total counters equal a serial run's.

Executor lifecycle (docs/parallel.md, "Executor lifecycle"):

* the worker pool is created **once**, lazily, on the first pooled map,
  and reused by every subsequent map until :meth:`ParallelExecutor.close`
  (the executor is a context manager; a ``weakref.finalize`` backstop
  releases the pool and any shm segments if the executor is dropped
  without closing);
* the graph publication is pinned for the pool's lifetime and
  re-published **only when the graph identity changes** (``graph is not
  previous_graph``); workers cache the materialised graph by publication
  token and re-attach only when the token changes;
* per-worker *task state* (``setup``'s return value) is cached by a spec
  token derived from ``(setup, task, payload, graph)`` — consecutive
  maps with the same spec (greedy candidate rounds, sketch doublings,
  Monte-Carlo checkpoint batches) reuse the state instead of rebuilding
  it, which is where the warm pool's amortised-setup win comes from.

Failure semantics (docs/parallel.md, "Failure semantics"):

* a chunk whose task raises is retried up to ``retries`` times **on the
  same pool** (a recycled worker) — chunks are self-describing, so a
  retry is bit-identical to the first attempt — and then surfaces as
  :class:`~repro.errors.ExecError` naming the chunk index and a preview
  of its items, chaining the original;
* with a ``timeout`` configured, an attempt that produces no result
  within ``timeout`` seconds of the previous completion (a hung task,
  or a worker killed mid-chunk — the pool loses such a task silently
  either way) is abandoned, the now-poisoned pool is terminated, and
  the missing chunks are retried in a fresh pool;
* when pool-level failures outlive the retry budget the executor
  *degrades*: the still-missing chunks run inline in the parent, which
  is bit-identical by the same self-describing-chunks argument. Only
  deterministic task errors (a chunk that raised on every attempt with
  no pool failure in sight) raise instead of degrading.

Retry/timeout/degradation events increment ``exec.chunks.retried``,
``exec.chunks.timeout``, and ``exec.degraded``; pool construction and
graph publication increment ``exec.pool.created`` and
``exec.publications`` (the warm-pool invariant a bench run asserts is
exactly one of each). Event counters are created only when the events
actually occur. Fault injection for tests comes from
:mod:`repro.exec.resilience` (``REPRO_EXEC_FAULTS`` or an explicit
:class:`~repro.exec.resilience.FaultPlan`); the plan rides inside each
chunk message, so faults fire only in pool workers, never inline.

Chunk auto-tuning: :meth:`ParallelExecutor.map_items` records the
observed per-item cost of each ``(setup, task)`` pair and sizes later
chunks to a wall-clock target, bounded by a deterministic floor (at
least one chunk per worker, at least one item per chunk) and ceiling
(:data:`MAX_CHUNKS_PER_WORKER`). Timing influences *scheduling
granularity only* — results and merged counter totals are
chunking-independent by the contract above.

The pool start method is the platform default (``fork`` on Linux);
worker state lives in the module-level ``_WORKER_STATE`` dict, which the
pool initializer clears — a forked worker inherits the parent's (or a
previous pool's) module state, and stale entries must never leak into a
new pool (regression-tested in ``tests/exec/test_pool.py``). Because
workers are otherwise generic (graph handles and task specs ride inside
the chunk messages, keyed by tokens), pools can optionally be shared
process-wide: with ``REPRO_EXEC_SHARED_POOL=1`` every executor borrows
one pool per worker-count from a module cache instead of owning its own
— the CI leg that runs whole test suites against a single long-lived
pool uses exactly this.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import time
import weakref
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExecError
from repro.exec.resilience import FaultPlan
from repro.exec.shm import materialize_graph, publish_graph
from repro.obs.registry import MetricsRegistry, metrics, set_registry, use_registry

__all__ = [
    "ParallelExecutor",
    "resolve_workers",
    "split_chunks",
    "split_even",
    "shutdown_shared_pools",
]

#: chunks each worker should see across a map, on average; more chunks
#: than workers smooths imbalance without shrinking chunks to nothing.
CHUNKS_PER_WORKER = 4

#: hard ceiling on auto-tuned chunks per worker — past this, message
#: overhead dominates whatever balance finer chunks would buy.
MAX_CHUNKS_PER_WORKER = 16

#: wall-clock duration the auto-tuner aims each chunk at.
TARGET_CHUNK_SECONDS = 0.05

#: default retry budget per map (attempts = retries + 1).
DEFAULT_RETRIES = 2

#: environment flag: when set (and not "0"), executors borrow pools
#: from a process-wide cache keyed by worker count instead of owning
#: one each — pool reuse across executors and test cases.
SHARED_POOL_ENV = "REPRO_EXEC_SHARED_POOL"

# Per-worker state: the materialised graph (keyed by publication token)
# and the consumer's task state (keyed by spec token). Module-level so
# the (picklable) _run_chunk function can reach it.
_WORKER_STATE: Dict[str, Any] = {}

# Process-unique tokens for graph publications and task specs. Workers
# key their caches on these, so they must never collide across
# executors (pools can be shared process-wide).
_GRAPH_TOKENS = itertools.count(1)
_SPEC_TOKENS = itertools.count(1)

# Process-wide pool cache used when REPRO_EXEC_SHARED_POOL is set,
# keyed by worker count. Poisoned pools are evicted on discard.
_SHARED_POOLS: Dict[int, Any] = {}

#: sentinel distinguishing "no graph seen yet" from a ``None`` graph.
_UNSET = object()


def resolve_workers(
    workers: Union[int, str, None], items: Optional[int] = None
) -> int:
    """Turn a worker request into a concrete count.

    ``None`` and ``1`` mean serial; ``0`` and ``"auto"`` mean one worker
    per CPU; any other positive int is taken literally. When ``items``
    is given the count is capped by it (no point spawning idle workers).
    """
    if workers is None:
        count = 1
    elif workers == "auto" or workers == 0:
        count = multiprocessing.cpu_count()
    else:
        count = int(workers)
        if count < 0:
            raise ExecError(f"workers must be >= 0, got {workers!r}")
    if items is not None:
        count = min(count, items)
    return max(1, count)


def split_even(items: Sequence[Any], chunk_count: int) -> List[List[Any]]:
    """Split ``items`` into exactly ``chunk_count`` contiguous chunks.

    Sizes differ by at most one and concatenating the chunks reproduces
    ``items`` exactly — the property the executor's index-order merge
    relies on.
    """
    items = list(items)
    if not items:
        return []
    chunk_count = max(1, min(len(items), int(chunk_count)))
    base, extra = divmod(len(items), chunk_count)
    chunks: List[List[Any]] = []
    start = 0
    for position in range(chunk_count):
        size = base + (1 if position < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


def split_chunks(
    items: Sequence[Any],
    worker_count: int,
    per_worker: int = CHUNKS_PER_WORKER,
) -> List[List[Any]]:
    """Deterministic contiguous split of ``items`` into balanced chunks.

    Aims for ``worker_count * per_worker`` chunks (never more than
    ``len(items)``).
    """
    return split_even(items, worker_count * per_worker)


def _preview_items(chunk) -> str:
    """Short human-readable preview of a chunk's items for error messages."""
    try:
        items = list(chunk)
    except TypeError:
        return repr(chunk)
    shown = ", ".join(repr(item) for item in items[:3])
    if len(items) > 3:
        shown += f", ... ({len(items)} items)"
    return f"[{shown}]"


def _chunk_error(
    index: int, chunk, attempts: int, cause: Optional[BaseException]
) -> ExecError:
    """Build the :class:`ExecError` a failed chunk surfaces as."""
    what = (
        f"{type(cause).__name__}: {cause}" if cause is not None
        else "timed out or its worker was lost"
    )
    error = ExecError(
        f"chunk {index} (items {_preview_items(chunk)}) failed after "
        f"{attempts} attempt(s): {what}"
    )
    error.__cause__ = cause
    return error


def _shippable(exc: BaseException) -> BaseException:
    """An exception safe to send back through the pool's result pipe."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ExecError(f"unpicklable task error {type(exc).__name__}: {exc}")


def _init_worker() -> None:
    """Pool initializer: start this worker from a clean slate.

    Workers are *generic*: the graph handle and the task spec arrive
    inside each chunk message (keyed by tokens), so the initializer
    only has to guarantee a clean cache and an uncounted default
    registry. A forked worker inherits the parent's module state (and,
    if the process hosted an earlier pool, its leftovers): start clean
    so no previous graph or task state can leak into this pool.
    """
    _WORKER_STATE.clear()
    set_registry(None)  # set-up work is uncounted; chunks opt back in


def _worker_state_for(spec) -> Any:
    """Return (building if stale) this worker's state for ``spec``.

    The graph is cached by publication token and the task state by spec
    token; both rebuild under the null registry so amortised set-up
    stays uncounted regardless of when (or how often) it happens.
    """
    token, setup, _task, payload, _collect, _faults, graph_token, handle = spec
    if _WORKER_STATE.get("spec_token") == token:
        return _WORKER_STATE["state"]
    set_registry(None)
    if _WORKER_STATE.get("graph_token") != graph_token:
        _WORKER_STATE["graph"] = materialize_graph(handle)
        _WORKER_STATE["graph_token"] = graph_token
        # A new graph invalidates any cached task state built on it.
        _WORKER_STATE.pop("state", None)
        _WORKER_STATE.pop("spec_token", None)
    state = setup(_WORKER_STATE["graph"], payload)
    _WORKER_STATE["state"] = state
    _WORKER_STATE["spec_token"] = token
    return state


def _run_chunk(message) -> Tuple[int, Optional[BaseException], Any, Optional[dict]]:
    """Worker: run one ``(spec, index, attempt, chunk)`` message.

    Returns ``(index, error, result, snapshot)``. Task exceptions come
    back as values rather than raising through the pool: the parent
    needs the chunk index to retry deterministically, and
    ``imap_unordered`` would otherwise re-raise with no indication of
    which chunk failed. A failed attempt ships no snapshot — partially
    counted work must not pollute the merged totals.
    """
    spec, index, attempt, chunk = message
    try:
        faults: Optional[FaultPlan] = spec[5]
        if faults is not None:
            faults.apply(index, attempt)
        task = spec[2]
        collect = spec[4]
        state = _worker_state_for(spec)
        if not collect:
            return index, None, task(state, chunk), None
        registry = MetricsRegistry()
        with use_registry(registry):
            result = task(state, chunk)
        return index, None, result, registry.snapshot()
    except Exception as exc:
        return index, _shippable(exc), None, None


def _shared_pools_enabled() -> bool:
    return os.environ.get(SHARED_POOL_ENV, "") not in ("", "0")


def shutdown_shared_pools() -> None:
    """Terminate and drop every pool in the process-wide shared cache."""
    while _SHARED_POOLS:
        _, pool = _SHARED_POOLS.popitem()
        pool.terminate()
        pool.join()


def _release_executor_resources(resources: Dict[str, Any]) -> None:
    """Finalizer target: terminate an owned pool, close the publication.

    Module-level and handed the mutable resource holder (never the
    executor itself) so ``weakref.finalize`` can run it at garbage
    collection or interpreter exit without keeping the executor alive.
    """
    pool = resources.get("pool")
    resources["pool"] = None
    if pool is not None:
        pool.terminate()
        pool.join()
    publication = resources.get("publication")
    resources["publication"] = None
    if publication is not None:
        publication.close()


class ParallelExecutor:
    """Deterministic, fault-tolerant fan-out of chunked work over one
    long-lived worker pool.

    The executor is built to be **created once and reused**: the first
    pooled map lazily spins up the pool and publishes the graph; later
    maps — whether more sigma rounds, sketch doublings, Monte-Carlo
    batches, or a different subsystem entirely — reuse both, and worker
    task state is cached between maps with an identical spec. Use it as
    a context manager, or call :meth:`close` when done; an executor
    dropped without closing is cleaned up by ``weakref.finalize``.

    Args:
        workers: worker request (see :func:`resolve_workers`); ``None``
            or ``1`` runs everything inline with zero pool overhead.
        share: graph publication mode (see
            :func:`~repro.exec.shm.publish_graph`).
        timeout: per-chunk deadline in seconds, measured from the
            previous completed chunk (``None`` = wait forever, the
            pre-resilience behavior). A timeout is also how a worker
            killed mid-chunk is detected — the pool loses such a task
            silently, so without a timeout the map blocks forever.
        retries: how many times failed chunks are re-executed before the
            executor gives up on the pool (``None`` = the default
            budget of :data:`DEFAULT_RETRIES`). Retries are
            bit-identical because chunks are self-describing; task
            errors retry on the *same* pool (recycled workers), and a
            fresh pool is built only when the previous one was poisoned
            by a timeout.
        degrade: whether pool-level failures that outlive the retry
            budget fall back to running the missing chunks inline in the
            parent (``True``, the default) or raise.
        faults: an explicit :class:`~repro.exec.resilience.FaultPlan`
            for tests; ``None`` reads the ambient ``REPRO_EXEC_FAULTS``
            plan. Faults fire only inside pool workers, never on the
            inline or degraded path.

    The consumer supplies two picklable module-level functions:

    * ``setup(graph, payload) -> state`` — a pure function of its
      arguments, run under the null registry (uncounted). The executor
      caches its result — per worker across maps, and on the inline
      path across calls — so it must not capture per-call mutable
      context;
    * ``task(state, chunk) -> result`` — runs once per chunk under a
      fresh registry whose snapshot is merged home in chunk order; it
      must treat ``state`` as read-only.
    """

    __slots__ = (
        "workers", "share", "timeout", "retries", "degrade", "faults",
        "_pool", "_pool_size", "_pool_shared",
        "_publication", "_graph", "_graph_version", "_graph_handle",
        "_graph_token", "_spec_key", "_spec_token",
        "_inline_key", "_inline_graph", "_inline_version", "_inline_state",
        "_item_costs", "_resources", "_finalizer", "__weakref__",
    )

    def __init__(
        self,
        workers: Union[int, str, None] = None,
        share: str = "auto",
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        degrade: bool = True,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.workers = workers
        self.share = share
        if timeout is not None and float(timeout) <= 0:
            raise ExecError(f"timeout must be > 0 seconds, got {timeout!r}")
        self.timeout = None if timeout is None else float(timeout)
        retries = DEFAULT_RETRIES if retries is None else int(retries)
        if retries < 0:
            raise ExecError(f"retries must be >= 0, got {retries!r}")
        self.retries = retries
        self.degrade = bool(degrade)
        self.faults = faults
        self._pool = None
        self._pool_size = 0
        self._pool_shared = False
        self._publication = None
        self._graph: Any = _UNSET
        self._graph_version: Optional[int] = None
        self._graph_handle = None
        self._graph_token: Optional[int] = None
        self._spec_key: Optional[tuple] = None
        self._spec_token: Optional[int] = None
        self._inline_key: Optional[tuple] = None
        self._inline_graph: Any = _UNSET
        self._inline_version: Optional[int] = None
        self._inline_state: Any = None
        self._item_costs: Dict[tuple, float] = {}
        self._resources: Dict[str, Any] = {"pool": None, "publication": None}
        self._finalizer = weakref.finalize(
            self, _release_executor_resources, self._resources
        )

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Release the pool, the graph publication, and every cache.

        Idempotent, and not terminal: a later map lazily rebuilds
        whatever it needs, so ``close()`` between workloads simply
        returns the executor to its cold state. Shared pools (see
        :data:`SHARED_POOL_ENV`) are left running for other borrowers.
        """
        pool, self._pool = self._pool, None
        if pool is not None and not self._pool_shared:
            pool.terminate()
            pool.join()
        self._resources["pool"] = None
        publication, self._publication = self._publication, None
        if publication is not None:
            publication.close()
        self._resources["publication"] = None
        self._graph = _UNSET
        self._graph_version = None
        self._graph_handle = None
        self._graph_token = None
        self._spec_key = None
        self._spec_token = None
        self._inline_key = None
        self._inline_graph = _UNSET
        self._inline_version = None
        self._inline_state = None
        self._item_costs.clear()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the maps ---------------------------------------------------------------

    def map_items(
        self,
        setup: Callable[[Any, Any], Any],
        task: Callable[[Any, Any], Any],
        payload: Any,
        items: Sequence[Any],
        graph=None,
    ) -> List[Any]:
        """Run ``task`` over auto-tuned chunks of ``items``; flatten in order.

        ``task`` must return a sequence with one entry per chunk item.
        Chunk sizes come from the per-item cost observed on earlier maps
        of the same ``(setup, task)`` pair, aimed at
        :data:`TARGET_CHUNK_SECONDS` per chunk with a deterministic
        floor (≥ 1 chunk per worker, ≥ 1 item per chunk); until a cost
        is known, the :func:`split_chunks` default applies. Tuning
        affects scheduling granularity only — results and merged counter
        totals are chunking-independent.
        """
        items = list(items)
        if not items:
            return []
        worker_count = resolve_workers(self.workers, len(items))
        chunks = self._plan_chunks(setup, task, items, worker_count)
        started = time.perf_counter()
        chunk_results = self.map_chunks(setup, task, payload, chunks, graph=graph)
        if worker_count > 1:
            self._observe_cost(setup, task, len(items), time.perf_counter() - started)
        flat: List[Any] = []
        for result in chunk_results:
            flat.extend(result)
        return flat

    def map_chunks(
        self,
        setup: Callable[[Any, Any], Any],
        task: Callable[[Any, Any], Any],
        payload: Any,
        chunks: Sequence[Any],
        graph=None,
    ) -> List[Any]:
        """Run ``task`` over every chunk; results come back in chunk order.

        Serial (one effective worker) and parallel execution produce
        identical result lists and — via snapshot merging — identical
        metric totals in the caller's registry, whether or not chunks
        were retried, timed out, or degraded along the way.
        """
        chunks = list(chunks)
        if not chunks:
            return []
        registry = metrics()
        worker_count = resolve_workers(self.workers, len(chunks))
        if worker_count <= 1:
            # Inline path: same code, no pool. Set-up stays uncounted
            # (exactly as in a worker) and its result is cached across
            # calls (exactly as in a worker); chunks run under the
            # caller's registry directly, which is what a serial run
            # does.
            state = self._inline_state_for(setup, task, payload, graph)
            return [
                self._run_inline(task, state, index, chunk)
                for index, chunk in enumerate(chunks)
            ]

        faults = self.faults if self.faults is not None else FaultPlan.from_env()
        handle, graph_token = self._ensure_publication(graph, registry)
        spec = self._spec_for(
            setup, task, payload, graph_token, handle, registry.enabled, faults
        )
        results: Dict[int, Any] = {}
        snapshots: Dict[int, Optional[dict]] = {}
        pending: Dict[int, Any] = dict(enumerate(chunks))
        last_errors: Dict[int, BaseException] = {}
        pool_failures = 0

        try:
            with registry.timer("time.exec.pool"):
                for attempt in range(self.retries + 1):
                    if not pending:
                        break
                    if attempt > 0:
                        registry.counter("exec.chunks.retried").add(len(pending))
                    pool_failures += self._run_attempt(
                        spec, registry, attempt, pending, results,
                        snapshots, last_errors,
                    )
        finally:
            if self._pool_shared:
                # Borrowed pools go back to the cache between maps so a
                # later eviction (poisoned pool) can't strand a stale
                # reference here.
                self._pool = None

        if pending:
            first = min(pending)
            # Degrade only when the *pool* misbehaved: a chunk that
            # raised deterministically on every attempt would fail
            # inline too, so surface it with its context instead.
            task_failure_only = pool_failures == 0 and all(
                index in last_errors for index in pending
            )
            if task_failure_only or not self.degrade:
                raise _chunk_error(
                    first, pending[first], self.retries + 1,
                    last_errors.get(first),
                )
            registry.counter("exec.degraded").add(1)
            state = self._inline_state_for(setup, task, payload, graph)
            for index in sorted(pending):
                results[index] = self._run_inline(
                    task, state, index, pending[index]
                )
                snapshots[index] = None
            pending.clear()

        ordered: List[Any] = []
        for index in range(len(chunks)):  # merge in chunk (= serial) order
            ordered.append(results[index])
            snapshot = snapshots.get(index)
            if snapshot is not None:
                registry.merge_snapshot(snapshot)
        return ordered

    # -- internals --------------------------------------------------------------

    def _plan_chunks(
        self, setup, task, items: List[Any], worker_count: int
    ) -> List[List[Any]]:
        """Size chunks from the observed per-item cost, with safe bounds."""
        if worker_count <= 1:
            return [items]
        cost = self._item_costs.get((setup, task))
        if not cost or cost <= 0.0:
            return split_chunks(items, worker_count)
        size = max(1, round(TARGET_CHUNK_SECONDS / cost))
        # Deterministic floor: never fewer chunks than workers (every
        # worker gets work), never fewer than one item per chunk.
        chunk_count = -(-len(items) // size)
        chunk_count = max(worker_count, chunk_count)
        chunk_count = min(
            len(items), chunk_count, worker_count * MAX_CHUNKS_PER_WORKER
        )
        return split_even(items, chunk_count)

    def _observe_cost(
        self, setup, task, item_count: int, elapsed: float
    ) -> None:
        """Fold one pooled map's per-item wall-clock into the cost EMA."""
        if item_count <= 0 or elapsed <= 0.0:
            return
        observed = elapsed / item_count
        key = (setup, task)
        previous = self._item_costs.get(key)
        self._item_costs[key] = (
            observed if previous is None else 0.5 * previous + 0.5 * observed
        )

    def _inline_state_for(self, setup, task, payload, graph) -> Any:
        """Inline-path task state, cached like a worker's would be."""
        try:
            payload_bytes = pickle.dumps(
                payload, protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:
            payload_bytes = None  # uncacheable payload: rebuild each call
        key = (setup, task, payload_bytes)
        version = getattr(graph, "version", None)
        if (
            payload_bytes is not None
            and key == self._inline_key
            and graph is self._inline_graph
            and version == self._inline_version
        ):
            return self._inline_state
        with use_registry(None):
            state = setup(graph, payload)
        if payload_bytes is not None:
            self._inline_key = key
            self._inline_graph = graph
            self._inline_version = version
            self._inline_state = state
        return state

    def _ensure_publication(self, graph, registry) -> Tuple[Any, int]:
        """Publish ``graph`` unless the pinned publication already covers it.

        The pin is ``(identity, version)``: graphs that mutate in place
        (:meth:`repro.graph.compact.IndexedDiGraph.apply_updates`) bump
        their ``version``, which forces a republication — and a new graph
        token, so workers drop every cache derived from the stale arrays.
        """
        version = getattr(graph, "version", None)
        if (
            graph is self._graph
            and version == self._graph_version
            and self._graph_token is not None
        ):
            return self._graph_handle, self._graph_token
        publication, self._publication = self._publication, None
        self._resources["publication"] = None
        if publication is not None:
            publication.close()
        if graph is None:
            handle: Any = None
            token = 0
        else:
            publication = publish_graph(graph, self.share)
            registry.counter("exec.publications").add(1)
            self._publication = publication
            self._resources["publication"] = publication
            handle = publication.handle
            token = next(_GRAPH_TOKENS)
        self._graph = graph
        self._graph_version = version
        self._graph_handle = handle
        self._graph_token = token
        return handle, token

    def _spec_for(
        self, setup, task, payload, graph_token, handle, collect, faults
    ) -> tuple:
        """Build the per-map chunk spec, reusing the token when unchanged.

        The token keys worker-side state caching, so it changes exactly
        when a rebuilt state could differ: new setup/task, new payload
        bytes, or a new graph publication. ``collect`` and ``faults``
        ride alongside (they affect a chunk's execution, not its state).
        """
        payload_bytes = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        key = (setup, task, graph_token, payload_bytes)
        if key != self._spec_key or self._spec_token is None:
            self._spec_key = key
            self._spec_token = next(_SPEC_TOKENS)
        return (
            self._spec_token, setup, task, payload,
            bool(collect), faults, graph_token, handle,
        )

    def _ensure_pool(self, registry):
        """Return the live pool, creating (or borrowing) one if needed."""
        if self._pool is not None:
            return self._pool
        size = resolve_workers(self.workers)
        shared = _shared_pools_enabled()
        if shared:
            pool = _SHARED_POOLS.get(size)
            if pool is not None:
                self._pool = pool
                self._pool_size = size
                self._pool_shared = True
                return pool
        pool = multiprocessing.Pool(processes=size, initializer=_init_worker)
        registry.counter("exec.pool.created").add(1)
        self._pool = pool
        self._pool_size = size
        self._pool_shared = shared
        if shared:
            _SHARED_POOLS[size] = pool
        else:
            self._resources["pool"] = pool
        return pool

    def _discard_pool(self) -> None:
        """Terminate a poisoned pool (hung or killed workers) and forget it."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if self._pool_shared and _SHARED_POOLS.get(self._pool_size) is pool:
            del _SHARED_POOLS[self._pool_size]
        self._resources["pool"] = None
        pool.terminate()
        pool.join()

    def _run_attempt(
        self, spec, registry, attempt, pending, results, snapshots, last_errors,
    ) -> int:
        """One pool pass over the pending chunks.

        Completed chunks move from ``pending`` into ``results``; task
        errors are recorded in ``last_errors`` (the chunk stays pending)
        and retry on the same pool next attempt. Returns the number of
        pool-level failures observed (0 or 1): on a timeout the whole
        attempt is abandoned and the pool terminated — its workers may
        be hung or dead — so the next attempt runs everything still
        pending in a fresh pool.
        """
        pool = self._ensure_pool(registry)
        messages = [(spec, i, attempt, pending[i]) for i in sorted(pending)]
        received = 0
        iterator = pool.imap_unordered(_run_chunk, messages)
        for _ in range(len(messages)):
            try:
                index, error, result, snapshot = iterator.next(self.timeout)
            except multiprocessing.TimeoutError:
                registry.counter("exec.chunks.timeout").add(
                    len(messages) - received
                )
                self._discard_pool()
                return 1
            received += 1
            if error is not None:
                last_errors[index] = error
                continue
            results[index] = result
            snapshots[index] = snapshot
            del pending[index]
        return 0

    @staticmethod
    def _run_inline(task, state, index, chunk):
        """Run one chunk in-process, wrapping task errors with context."""
        try:
            return task(state, chunk)
        except ExecError:
            raise
        except Exception as exc:
            raise _chunk_error(index, chunk, 1, exc) from exc

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(workers={self.workers!r}, share={self.share!r}, "
            f"timeout={self.timeout}, retries={self.retries}, "
            f"degrade={self.degrade})"
        )
