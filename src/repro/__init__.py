"""repro — Least Cost Rumor Blocking in Social Networks (ICDCS 2013).

A from-scratch reproduction of Fan, Lu, Wu, Thuraisingham, Ma & Bi,
"Least Cost Rumor Blocking in Social Networks": the OPOAO and DOAM
competitive diffusion models, bridge-end machinery (RFST/BBST), the
Monte-Carlo Greedy and Set-Cover-Based-Greedy algorithms with their
approximation guarantees, the comparison heuristics, and the full
experiment harness regenerating every table and figure of the paper's
evaluation section.

Quickstart::

    from repro import (
        DiGraph, build_context, SCBGSelector, DOAMModel, evaluate_protectors,
    )

    graph = DiGraph.from_edges([...])
    context, communities, rumor_cid = build_context(graph)
    protectors = SCBGSelector().select(context)
    report = evaluate_protectors(context, protectors, DOAMModel())
    print(report.protected_bridge_fraction)

See README.md for the full tour and DESIGN.md for the paper-to-module map.
"""

from repro.algorithms import (
    CELFGreedySelector,
    GreedySelector,
    MaxDegreeSelector,
    PageRankSelector,
    ProtectorSelector,
    ProximitySelector,
    RandomSelector,
    RISGreedySelector,
    SCBGSelector,
    SelectionContext,
    SigmaEstimator,
    estimate_sources,
    greedy_set_cover,
)
from repro.bridge import build_all_bbsts, build_rfsts, find_bridge_ends
from repro.community import CommunityStructure, label_propagation, louvain, modularity
from repro.diffusion import (
    CompetitiveICModel,
    CompetitiveLTModel,
    DiffusionOutcome,
    DOAMModel,
    MonteCarloSimulator,
    OPOAOModel,
    SeedSets,
)
from repro.errors import ReproError
from repro.graph import DiGraph, IndexedDiGraph
from repro.lcrb import (
    LCRBDProblem,
    LCRBPProblem,
    LCRBProblem,
    build_context,
    draw_rumor_seeds,
    evaluate_protectors,
)
from repro.rng import RngStream
from repro.sketch import SketchSigmaEstimator, SketchStore

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph
    "DiGraph",
    "IndexedDiGraph",
    # community
    "CommunityStructure",
    "louvain",
    "label_propagation",
    "modularity",
    # diffusion
    "OPOAOModel",
    "DOAMModel",
    "CompetitiveICModel",
    "CompetitiveLTModel",
    "SeedSets",
    "DiffusionOutcome",
    "MonteCarloSimulator",
    # bridge
    "find_bridge_ends",
    "build_rfsts",
    "build_all_bbsts",
    # algorithms
    "ProtectorSelector",
    "SelectionContext",
    "GreedySelector",
    "CELFGreedySelector",
    "SigmaEstimator",
    "SCBGSelector",
    "RISGreedySelector",
    "greedy_set_cover",
    # sketch
    "SketchStore",
    "SketchSigmaEstimator",
    "MaxDegreeSelector",
    "ProximitySelector",
    "RandomSelector",
    "PageRankSelector",
    "estimate_sources",
    # lcrb
    "LCRBProblem",
    "LCRBPProblem",
    "LCRBDProblem",
    "build_context",
    "draw_rumor_seeds",
    "evaluate_protectors",
    # infrastructure
    "RngStream",
    "ReproError",
]
