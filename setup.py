"""Legacy setup shim.

All metadata lives in pyproject.toml. This file exists so the project
also installs on tooling that predates PEP 517/660 editable installs; on
fully offline machines, disable pip's build isolation
(``pip install -e . --no-build-isolation``) so the declared build
requirements are resolved from the local environment instead of PyPI.
"""

from setuptools import setup

setup()
