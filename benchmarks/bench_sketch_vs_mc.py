"""Sketch-greedy vs Monte-Carlo greedy/CELF: wall-clock and quality.

The conclusion of the paper flags greedy's simulation cost as the open
problem; :mod:`repro.sketch` answers it with RR-set sketches. This bench
runs the LCRB-D instance (DOAM semantics, identical rumor seeds and
budget) on the Enron-small and Hep replicas and compares

* **quality** — the referee σ (expected blocked bridge ends) of each
  selector's protector set, judged by one independent Monte-Carlo
  estimator, and
* **cost** — selection wall-clock.

Acceptance gate (Enron-small): RIS-greedy reaches at least 95% of CELF's
referee σ while selecting at least 5x faster.
"""

from benchmarks.conftest import FAST, SCALE
from repro.algorithms.base import SelectionContext
from repro.algorithms.celf import CELFGreedySelector
from repro.algorithms.greedy import GreedySelector, SigmaEstimator
from repro.algorithms.ris_greedy import RISGreedySelector
from repro.datasets.registry import load_dataset
from repro.diffusion.doam import DOAMModel
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream
from repro.utils.tables import format_table
from repro.utils.timer import Timer

BUDGET = 3 if FAST else 5
POOL_CAP = 60 if FAST else 150
#: RIS sketch sizing, FAST-aware like the Monte-Carlo knobs above (DOAM
#: clamps to one deterministic world, but OPOAO-semantics reruns and the
#: adaptive doubling cap both honour these).
RIS_WORLDS = 16 if FAST else 64
RIS_MAX_WORLDS = 512 if FAST else 4096


def _ris_selector() -> RISGreedySelector:
    return RISGreedySelector(
        semantics="doam",
        initial_worlds=RIS_WORLDS,
        max_worlds=RIS_MAX_WORLDS,
    )


def _instance(name: str) -> SelectionContext:
    dataset = load_dataset(name, scale=SCALE, seed=13)
    size = dataset.communities.size(dataset.rumor_community)
    seeds = draw_rumor_seeds(
        dataset.communities,
        dataset.rumor_community,
        max(2, size // 10),
        RngStream(44, name="sketch-vs-mc"),
    )
    return SelectionContext(dataset.graph, dataset.rumor_community_nodes, seeds)


def _run_selectors(context: SelectionContext) -> dict:
    """Select with each algorithm on the same instance; referee-score all."""
    selectors = {
        "greedy": GreedySelector(
            model=DOAMModel(), runs=1, max_candidates=POOL_CAP, rng=RngStream(7)
        ),
        "celf": CELFGreedySelector(
            model=DOAMModel(), runs=1, max_candidates=POOL_CAP, rng=RngStream(7)
        ),
        "ris_greedy": _ris_selector(),
    }
    referee = SigmaEstimator(context, model=DOAMModel(), runs=1, rng=RngStream(91))
    out = {}
    for key, selector in selectors.items():
        timer = Timer(key)
        with timer:
            picks = selector.select(context, budget=BUDGET)
        out[key] = {
            "protectors": [str(p) for p in picks],
            "sigma": referee.sigma(picks),
            "seconds": timer.elapsed,
        }
    return out


def _render(name: str, results: dict) -> str:
    celf_time = results["celf"]["seconds"]
    rows = [
        [
            key,
            len(entry["protectors"]),
            round(entry["sigma"], 2),
            round(entry["seconds"], 4),
            f"{celf_time / max(entry['seconds'], 1e-9):.1f}x",
        ]
        for key, entry in results.items()
    ]
    return format_table(
        ["selector", "|P|", "referee sigma", "wall-clock (s)", "speedup vs celf"],
        rows,
        title=f"{name} (LCRB-D, budget={BUDGET}, scale={SCALE})",
    )


def test_sketch_vs_mc_enron_small(benchmark, report_result, bench_metrics):
    context = _instance("enron-small")
    with bench_metrics.collect():
        results = _run_selectors(context)
    bench_metrics.emit(
        "sketch_vs_mc_enron_small",
        context={"dataset": "enron-small", "budget": BUDGET},
    )

    # Re-time the sketch selection under pytest-benchmark statistics (a
    # fresh selector: the store cache would otherwise hide sampling cost).
    benchmark.pedantic(
        lambda: _ris_selector().select(context, budget=BUDGET),
        rounds=1,
        iterations=1,
    )

    ris, celf = results["ris_greedy"], results["celf"]
    assert ris["sigma"] >= 0.95 * celf["sigma"], (
        f"RIS quality {ris['sigma']} below 95% of CELF {celf['sigma']}"
    )
    speedup = celf["seconds"] / max(ris["seconds"], 1e-9)
    assert speedup >= 5.0, f"RIS speedup {speedup:.1f}x < 5x over CELF"

    text = _render("enron-small", results)
    report_result(
        text,
        "sketch_vs_mc_enron_small",
        payload={
            "dataset": "enron-small",
            "budget": BUDGET,
            "scale": SCALE,
            "results": results,
            "speedup_vs_celf": speedup,
        },
    )


def test_sketch_vs_mc_hep(report_result, bench_metrics):
    context = _instance("hep")
    with bench_metrics.collect():
        results = _run_selectors(context)
    bench_metrics.emit(
        "sketch_vs_mc_hep", context={"dataset": "hep", "budget": BUDGET}
    )

    ris, celf = results["ris_greedy"], results["celf"]
    assert ris["sigma"] >= 0.90 * celf["sigma"] - 0.5

    text = _render("hep", results)
    report_result(
        text,
        "sketch_vs_mc_hep",
        payload={
            "dataset": "hep",
            "budget": BUDGET,
            "scale": SCALE,
            "results": results,
        },
    )
