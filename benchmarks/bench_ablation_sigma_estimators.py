"""Ablation — simulation σ̂ vs the proof's timestamp-graph σ̂.

Theorem 1's proof evaluates PB(A) on pairs of independently grown
timestamped random graphs (Section V.A.1); the experiments evaluate it on
the interacting competitive simulation. This bench runs both estimators
over the same protector sets on a replica instance and reports the
agreement — evidence that optimising the proof's objective optimises the
simulated one.
"""

from benchmarks.conftest import FAST, SCALE
from repro.algorithms.base import SelectionContext
from repro.algorithms.greedy import SigmaEstimator
from repro.algorithms.scbg import SCBGSelector
from repro.algorithms.sigma_timestamp import TimestampSigmaEstimator
from repro.datasets.registry import load_dataset
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream
from repro.utils.tables import format_table


def _instance():
    dataset = load_dataset("hep", scale=SCALE, seed=13)
    size = dataset.communities.size(dataset.rumor_community)
    seeds = draw_rumor_seeds(
        dataset.communities,
        dataset.rumor_community,
        max(1, size // 20),
        RngStream(41, name="ablation-sigma"),
    )
    return SelectionContext(dataset.graph, dataset.rumor_community_nodes, seeds)


def test_ablation_sigma_estimators(benchmark, report_result):
    context = _instance()
    runs = 10 if FAST else 30
    # Candidate protector sets of growing size: the SCBG cover first, then
    # the highest-coverage remaining candidates, so the sweep always spans
    # set sizes 1..4 even when the minimum cover is tiny.
    selector = SCBGSelector()
    cover = selector.select(context)
    coverage = selector.coverage_map(context)
    extras = sorted(
        (node for node in coverage if node not in cover),
        key=lambda node: (-len(coverage[node]), repr(node)),
    )
    ranked = cover + extras
    candidate_sets = [ranked[:k] for k in range(1, min(len(ranked), 4) + 1)]

    simulation = SigmaEstimator(context, runs=runs, rng=RngStream(42))
    proof = TimestampSigmaEstimator(context, runs=runs, rng=RngStream(43))

    def evaluate_all():
        return [
            (len(s), simulation.sigma(s), proof.sigma(s)) for s in candidate_sets
        ]

    rows = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)

    table_rows = [[size, sim, ts] for size, sim, ts in rows]
    text = format_table(
        ["|A|", "simulation sigma", "timestamp-graph sigma"],
        table_rows,
        title=f"Sigma estimator agreement (runs={runs}, |B|={len(context.bridge_ends)})",
    )
    report_result(text, "ablation_sigma_estimators")

    # Both must be monotone in |A| and agree within a couple of bridge ends.
    for column in (1, 2):
        values = [row[column] for row in rows]
        assert all(b >= a - 0.5 for a, b in zip(values, values[1:]))
    for _, sim, ts in rows:
        assert abs(sim - ts) <= max(2.0, 0.3 * max(sim, ts, 1.0))
