"""Throughput and determinism benchmark of the repro.exec worker pool.

Measures the ISSUE-4 tentpole: σ̂ candidate rounds fanned out over the
shared-memory process pool on the enron-small replica under OPOAO. One
timing pass runs the same candidate round serially and at
``TIMING_WORKERS`` workers and records speedup and parallel efficiency
(speedup / workers) in the emitted document's ``context``; wall clock is
runner-dependent and **not** gated.

The regression gate consumes the deterministic counter pass: the same
workload replayed at two workers under the
:class:`benchmarks.conftest.BenchMetrics` collector. The execution
layer's contract makes the merged counters equal a serial run's
(asserted here, together with bit-identical σ̂ values), so the counters
in ``BENCH_parallel.json`` are exactly as stable as the serial
benchmarks'.
"""

import time

import pytest

from benchmarks.conftest import FAST, SCALE
from repro.algorithms.base import SelectionContext
from repro.algorithms.greedy import candidate_pool
from repro.datasets.registry import load_dataset
from repro.diffusion.base import SeedSets
from repro.diffusion.opoao import OPOAOModel
from repro.diffusion.parallel import ParallelMonteCarloSimulator
from repro.diffusion.simulation import MonteCarloSimulator
from repro.kernels.sigma import BatchedSigmaEvaluator
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream

#: Coupled worlds per sigma evaluation.
RUNS = 16 if FAST else 50

#: Candidate protectors per sigma round.
CANDIDATES = 8 if FAST else 16

#: Monte-Carlo replicas for the simulator pass.
REPLICAS = 12 if FAST else 48

MAX_HOPS = 31

#: Worker count for the timing comparison (the acceptance measurement).
TIMING_WORKERS = 4

#: Worker count for the gated deterministic counter pass.
GATE_WORKERS = 2


@pytest.fixture(scope="module")
def instance():
    dataset = load_dataset("enron-small", scale=SCALE, seed=13)
    size = dataset.communities.size(dataset.rumor_community)
    rumor_labels = draw_rumor_seeds(
        dataset.communities,
        dataset.rumor_community,
        max(2, size // 10),
        RngStream(51, name="parallel-bench"),
    )
    context = SelectionContext(
        dataset.graph, dataset.rumor_community_nodes, rumor_labels
    )
    candidates = candidate_pool(context) or candidate_pool(context, "all")
    return context, candidates[:CANDIDATES]


def make_evaluator(context, workers=None):
    return BatchedSigmaEvaluator(
        context,
        model=OPOAOModel(),
        runs=RUNS,
        max_hops=MAX_HOPS,
        rng=RngStream(13, name="parallel-sigma"),
        backend="python",
        workers=workers,
    )


def timed(function):
    started = time.perf_counter()
    result = function()
    return result, time.perf_counter() - started


def test_parallel_sigma_throughput(instance, bench_metrics):
    context, candidates = instance
    assert candidates, "enron-small replica must yield candidate protectors"
    sets = [[candidate] for candidate in candidates]

    # Timing pass: worlds + baseline warmed outside the timed region in
    # both legs, exactly like the serial kernel benchmark.
    serial_evaluator = make_evaluator(context)
    serial_evaluator.baseline
    serial_sigmas, serial_seconds = timed(
        lambda: serial_evaluator.sigma_many(sets)
    )
    parallel_evaluator = make_evaluator(context, workers=TIMING_WORKERS)
    parallel_evaluator.baseline
    parallel_sigmas, parallel_seconds = timed(
        lambda: parallel_evaluator.sigma_many(sets)
    )
    assert parallel_sigmas == serial_sigmas  # bit-identical, per contract
    speedup = serial_seconds / max(parallel_seconds, 1e-9)

    # Deterministic counter pass for the regression gate: a fresh
    # two-worker evaluator plus a two-worker replica sweep; the merged
    # counters equal a serial run's, so the gate sees stable numbers.
    with bench_metrics.collect():
        gated = make_evaluator(context, workers=GATE_WORKERS)
        gated_sigmas = gated.sigma_many(sets)
        simulator = ParallelMonteCarloSimulator(
            OPOAOModel(),
            runs=REPLICAS,
            max_hops=MAX_HOPS,
            processes=GATE_WORKERS,
        )
        aggregate = simulator.simulate(
            context.indexed,
            SeedSets(rumors=context.rumor_seed_ids()),
            rng=RngStream(29, name="parallel-mc"),
        )
    assert gated_sigmas == serial_sigmas
    serial_aggregate = MonteCarloSimulator(
        OPOAOModel(), runs=REPLICAS, max_hops=MAX_HOPS
    ).simulate(
        context.indexed,
        SeedSets(rumors=context.rumor_seed_ids()),
        rng=RngStream(29, name="parallel-mc"),
    )
    assert aggregate.infected_per_hop == serial_aggregate.infected_per_hop

    bench_metrics.emit(
        "parallel",
        context={
            "backend": "python",
            "runs": RUNS,
            "candidates": len(candidates),
            "replicas": REPLICAS,
            "max_hops": MAX_HOPS,
            "timing_workers": TIMING_WORKERS,
            "gate_workers": GATE_WORKERS,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "efficiency": speedup / TIMING_WORKERS,
        },
    )
