"""Throughput and determinism benchmark of the repro.exec worker pool.

Measures the warm-pool executor: σ̂ candidate rounds fanned out over a
long-lived :class:`~repro.exec.pool.ParallelExecutor` on the enron-small
replica under OPOAO. The timing pass separates **cold start** (the first
map on a fresh executor, which pays worker spawn + graph publication +
per-worker setup) from **warm steady state** (repeat maps on the same
executor, best of ``WARM_REPEATS``, where workers reuse their cached
worlds). Speedup and parallel efficiency for both regimes land in the
emitted document's ``context``; efficiency is measured against the
*attainable* parallelism ``min(TIMING_WORKERS, cpu_count)`` so the
number is meaningful on throttled CI runners. Wall clock is
runner-dependent and **not** gated.

The regression gate consumes the deterministic counter pass instead: one
shared two-worker executor drives the σ̂ round *and* the Monte-Carlo
replica sweep under the :class:`benchmarks.conftest.BenchMetrics`
collector, and the pass asserts ``exec.pool.created == 1`` and
``exec.publications == 1`` — one CLI-shaped invocation, one pool, one
publication. The execution layer's contract makes the merged work
counters equal a serial run's (asserted here, together with
bit-identical σ̂ values), so the counters in ``BENCH_parallel.json`` are
exactly as stable as the serial benchmarks'.
"""

import os
import time

import pytest

from benchmarks.conftest import FAST, SCALE
from repro.algorithms.base import SelectionContext
from repro.algorithms.greedy import candidate_pool
from repro.datasets.registry import load_dataset
from repro.diffusion.base import SeedSets
from repro.diffusion.opoao import OPOAOModel
from repro.diffusion.parallel import ParallelMonteCarloSimulator
from repro.diffusion.simulation import MonteCarloSimulator
from repro.exec.pool import ParallelExecutor
from repro.kernels.sigma import BatchedSigmaEvaluator
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream

#: Coupled worlds per sigma evaluation.
RUNS = 16 if FAST else 50

#: Candidate protectors per sigma round.
CANDIDATES = 8 if FAST else 16

#: Monte-Carlo replicas for the simulator pass.
REPLICAS = 12 if FAST else 48

MAX_HOPS = 31

#: Worker count for the timing comparison (the acceptance measurement).
TIMING_WORKERS = 4

#: Warm steady-state passes on the same executor (best-of timing).
WARM_REPEATS = 3

#: Worker count for the gated deterministic counter pass.
GATE_WORKERS = 2


@pytest.fixture(scope="module")
def instance():
    dataset = load_dataset("enron-small", scale=SCALE, seed=13)
    size = dataset.communities.size(dataset.rumor_community)
    rumor_labels = draw_rumor_seeds(
        dataset.communities,
        dataset.rumor_community,
        max(2, size // 10),
        RngStream(51, name="parallel-bench"),
    )
    context = SelectionContext(
        dataset.graph, dataset.rumor_community_nodes, rumor_labels
    )
    candidates = candidate_pool(context) or candidate_pool(context, "all")
    return context, candidates[:CANDIDATES]


def make_evaluator(context, workers=None, executor=None):
    return BatchedSigmaEvaluator(
        context,
        model=OPOAOModel(),
        runs=RUNS,
        max_hops=MAX_HOPS,
        rng=RngStream(13, name="parallel-sigma"),
        backend="python",
        workers=workers,
        executor=executor,
    )


def timed(function):
    started = time.perf_counter()
    result = function()
    return result, time.perf_counter() - started


def test_parallel_sigma_throughput(instance, bench_metrics):
    context, candidates = instance
    assert candidates, "enron-small replica must yield candidate protectors"
    sets = [[candidate] for candidate in candidates]

    # Timing pass: worlds + baseline warmed outside the timed region in
    # both legs, exactly like the serial kernel benchmark.
    serial_evaluator = make_evaluator(context)
    serial_evaluator.baseline
    serial_sigmas, serial_seconds = timed(
        lambda: serial_evaluator.sigma_many(sets)
    )

    # Cold start = first map on a fresh executor: pays worker spawn, the
    # graph publication, and per-worker world setup. Warm steady state =
    # repeat maps on the SAME executor: workers reuse cached worlds and
    # the pinned publication, so only chunk shipping remains.
    with ParallelExecutor(TIMING_WORKERS) as executor:
        parallel_evaluator = make_evaluator(context, executor=executor)
        parallel_evaluator.baseline
        cold_sigmas, cold_seconds = timed(
            lambda: parallel_evaluator.sigma_many(sets)
        )
        warm_seconds = cold_seconds
        for _ in range(WARM_REPEATS):
            warm_sigmas, elapsed = timed(
                lambda: parallel_evaluator.sigma_many(sets)
            )
            assert warm_sigmas == serial_sigmas
            warm_seconds = min(warm_seconds, elapsed)
    assert cold_sigmas == serial_sigmas  # bit-identical, per contract

    attainable = max(1, min(TIMING_WORKERS, os.cpu_count() or 1))
    cold_speedup = serial_seconds / max(cold_seconds, 1e-9)
    warm_speedup = serial_seconds / max(warm_seconds, 1e-9)

    # Deterministic counter pass for the regression gate: ONE shared
    # executor drives the sigma round and the replica sweep, mirroring a
    # CLI invocation. The merged work counters equal a serial run's, so
    # the gate sees stable numbers; the exec.* counters additionally pin
    # the amortization contract (one pool, one publication).
    with bench_metrics.collect():
        with ParallelExecutor(GATE_WORKERS) as gate_executor:
            gated = make_evaluator(context, executor=gate_executor)
            gated_sigmas = gated.sigma_many(sets)
            simulator = ParallelMonteCarloSimulator(
                OPOAOModel(),
                runs=REPLICAS,
                max_hops=MAX_HOPS,
                processes=GATE_WORKERS,
                executor=gate_executor,
            )
            aggregate = simulator.simulate(
                context.indexed,
                SeedSets(rumors=context.rumor_seed_ids()),
                rng=RngStream(29, name="parallel-mc"),
            )
    assert gated_sigmas == serial_sigmas
    gate_counters = bench_metrics.registry.counter_values()
    assert gate_counters.get("exec.pool.created") == 1, gate_counters
    assert gate_counters.get("exec.publications") == 1, gate_counters
    serial_aggregate = MonteCarloSimulator(
        OPOAOModel(), runs=REPLICAS, max_hops=MAX_HOPS
    ).simulate(
        context.indexed,
        SeedSets(rumors=context.rumor_seed_ids()),
        rng=RngStream(29, name="parallel-mc"),
    )
    assert aggregate.infected_per_hop == serial_aggregate.infected_per_hop

    bench_metrics.emit(
        "parallel",
        context={
            "backend": "python",
            "runs": RUNS,
            "candidates": len(candidates),
            "replicas": REPLICAS,
            "max_hops": MAX_HOPS,
            "timing_workers": TIMING_WORKERS,
            "attainable_workers": attainable,
            "warm_repeats": WARM_REPEATS,
            "gate_workers": GATE_WORKERS,
            "serial_seconds": serial_seconds,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "cold_speedup": cold_speedup,
            "cold_efficiency": cold_speedup / attainable,
            # The acceptance numbers: warm steady state on the reused
            # pool, efficiency against attainable parallelism.
            "speedup": warm_speedup,
            "efficiency": warm_speedup / attainable,
        },
    )
