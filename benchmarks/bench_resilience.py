"""Fault-injection and checkpoint/resume benchmark of the worker pool.

Measures the ISSUE-5 tentpole: `ParallelExecutor`'s failure semantics
(per-chunk timeouts, deterministic retries, degradation to inline) and
the checkpoint/resume layer, exercised with *injected* faults so the
recovery paths run on every CI pass, not only when a runner misbehaves.

Every scenario asserts the core contract — faulted results equal the
unfaulted serial results bit-for-bit — and the emitted counters are
deterministic functions of the fault plans (one retry per injected
raise, one timeout per killed worker, ...), so ``BENCH_resilience.json``
gates under ``benchmarks/check_regression.py`` exactly like the other
benches. Wall clock here is dominated by the *deliberate* timeout waits
and is informational only.
"""

from repro.diffusion.base import SeedSets
from repro.diffusion.opoao import OPOAOModel
from repro.diffusion.parallel import ParallelMonteCarloSimulator
from repro.exec.pool import ParallelExecutor, split_chunks
from repro.exec.resilience import FaultPlan
from repro.graph.digraph import DiGraph
from repro.rng import RngStream

from benchmarks.conftest import FAST

#: Items per executor scenario (chunked over two workers).
ITEMS = 8 if FAST else 24

#: Monte-Carlo replicas for the checkpoint/resume scenario.
REPLICAS = 8 if FAST else 32

#: Generous deadline for the kill scenario: the surviving chunk must
#: finish well inside it for the timeout counter to be deterministic.
KILL_TIMEOUT = 2.0

#: Tight deadline for the repeated-hang scenario (the injected hang
#: sleeps far longer, so every faulted attempt times out exactly once).
HANG_TIMEOUT = 0.75


# Worker functions must be module-level so the pool can pickle them.
def null_setup(graph, payload):
    return payload


def scale_task(state, chunk):
    from repro.obs.registry import metrics

    registry = metrics()
    if registry.enabled:
        registry.counter("resilience.items").add(len(chunk))
    return [state * item for item in chunk]


def run_scenario(faults, timeout=None, retries=None):
    """Run the two-worker workload under ``faults``; returns the result."""
    chunks = split_chunks(list(range(ITEMS)), 2)
    return ParallelExecutor(
        2,
        timeout=timeout,
        retries=retries,
        faults=FaultPlan.parse(faults) if faults else FaultPlan([]),
    ).map_chunks(null_setup, scale_task, 3, chunks)


def test_resilience(bench_metrics, tmp_path):
    serial = ParallelExecutor(1).map_chunks(
        null_setup, scale_task, 3, split_chunks(list(range(ITEMS)), 2)
    )

    # Checkpoint/resume scenario: a replica sweep interrupted halfway,
    # then resumed to completion — outside collect() for the full run.
    graph = DiGraph.from_edges(
        [(0, i) for i in range(1, 8)] + [(i, i + 7) for i in range(1, 6)]
    ).to_indexed()
    seeds = SeedSets(rumors=[0])

    def simulator(runs, checkpoint=None):
        return ParallelMonteCarloSimulator(
            OPOAOModel(),
            runs=runs,
            max_hops=8,
            processes=2,
            checkpoint=checkpoint,
            checkpoint_every=4,
        )

    uninterrupted = simulator(REPLICAS).simulate(
        graph, seeds, rng=RngStream(17, name="resilience-mc")
    )
    checkpoint = tmp_path / "bench.ckpt"
    simulator(REPLICAS // 2, checkpoint).simulate(
        graph, seeds, rng=RngStream(17, name="resilience-mc")
    )

    with bench_metrics.collect():
        # Injected transient raise: one deterministic retry, no timeout.
        retried = run_scenario("raise@1")
        # Killed worker: detected at the chunk deadline, then retried.
        survived = run_scenario("kill@0", timeout=KILL_TIMEOUT)
        # Persistent hang: retry budget spent, chunk degrades to inline.
        degraded = run_scenario("hang@0x2:30", timeout=HANG_TIMEOUT, retries=1)
        # Resume the interrupted sweep out to the full replica count.
        resumed = simulator(REPLICAS, checkpoint).simulate(
            graph, seeds, rng=RngStream(17, name="resilience-mc")
        )

    assert retried == survived == degraded == serial
    assert resumed.infected_per_hop == uninterrupted.infected_per_hop
    assert resumed.final_infected.mean == uninterrupted.final_infected.mean

    counters = bench_metrics.registry.counter_values()
    assert counters["exec.chunks.retried"] == 3  # one per faulted scenario
    assert counters["exec.chunks.timeout"] == 3  # kill x1 + hang x2
    assert counters["exec.degraded"] == 1
    assert counters["exec.resumed_rounds"] == REPLICAS // 2
    assert counters["resilience.items"] == 3 * ITEMS

    bench_metrics.emit(
        "resilience",
        context={
            "items": ITEMS,
            "replicas": REPLICAS,
            "kill_timeout": KILL_TIMEOUT,
            "hang_timeout": HANG_TIMEOUT,
            "scenarios": ["raise@1", "kill@0", "hang@0x2:30", "resume"],
        },
    )
