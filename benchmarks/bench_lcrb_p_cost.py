"""Extension — solving the *actual* LCRB-P problem.

Section VI.B.2: "Since it is time consuming for us to obtain the solution
(the number of protector originators) for the LCRB-P problem, we evaluate
the effectiveness of the three algorithms from another aspect" — the
paper never reports LCRB-P solutions themselves. With CELF and the
coupled σ̂ estimator this library can afford to: for each protection level
α, run Algorithm 1's own stopping rule and report the protector budget it
needs, then verify the achieved protection level on an independent
evaluation.
"""

from benchmarks.conftest import FAST, SCALE
from repro.algorithms.base import SelectionContext
from repro.algorithms.celf import CELFGreedySelector
from repro.datasets.registry import load_dataset
from repro.diffusion.opoao import OPOAOModel
from repro.lcrb.evaluation import evaluate_protectors
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream
from repro.utils.tables import format_table


def test_lcrb_p_solutions(benchmark, report_result):
    rng = RngStream(111, name="lcrb-p")
    dataset = load_dataset("hep", scale=SCALE, seed=13)
    size = dataset.communities.size(dataset.rumor_community)
    seeds = draw_rumor_seeds(
        dataset.communities,
        dataset.rumor_community,
        max(2, size // 20),
        rng.fork("seeds"),
    )
    context = SelectionContext(dataset.graph, dataset.rumor_community_nodes, seeds)
    alphas = (0.6, 0.8) if FAST else (0.5, 0.7, 0.9)
    selector_runs = 6 if FAST else 12
    eval_runs = 40 if FAST else 120

    def solve_all():
        rows = []
        for alpha in alphas:
            selector = CELFGreedySelector(
                alpha=alpha,
                runs=selector_runs,
                max_candidates=60 if FAST else 120,
                rng=rng.fork("celf", alpha),
            )
            protectors = selector.select(context)  # budget-free: Algorithm 1
            check = evaluate_protectors(
                context,
                protectors,
                OPOAOModel(),
                runs=eval_runs,
                rng=rng.fork("eval", alpha),
            )
            rows.append(
                {
                    "alpha": alpha,
                    "protectors": len(protectors),
                    "achieved": check.protected_bridge_fraction,
                    "evaluations": selector.last_evaluations,
                }
            )
        return rows

    rows = benchmark.pedantic(solve_all, rounds=1, iterations=1)

    table_rows = [
        [
            f"{row['alpha']:.1f}",
            row["protectors"],
            f"{row['achieved']:.2f}",
            row["evaluations"],
        ]
        for row in rows
    ]
    text = format_table(
        ["alpha", "|P| selected", "achieved protection", "sigma evals"],
        table_rows,
        title=(
            f"LCRB-P solutions via CELF (|B|={len(context.bridge_ends)}, "
            f"|R|={len(context.rumor_seeds)})"
        ),
    )
    report_result(text, "lcrb_p_solutions")

    # Cost must be monotone in the protection level, and the achieved
    # protection must come close to the target (independent evaluation
    # noise allowed).
    budgets = [row["protectors"] for row in rows]
    assert budgets == sorted(budgets)
    for row in rows:
        assert row["achieved"] >= row["alpha"] - 0.15, row
