"""Extended baseline roster — the Fig. 4 protocol with every selector.

The paper compares Greedy against MaxDegree and Proximity (and drops
Random for poor performance). This bench widens the roster with the
library's extra baselines — PageRank, KCore, Random — under the same
``|P| = |R|`` OPOAO protocol, so a user can see where each centrality
lands between the paper's endpoints.
"""

from benchmarks.conftest import FAST, SCALE
from repro.algorithms.base import SelectionContext
from repro.algorithms.celf import CELFGreedySelector
from repro.algorithms.heuristics import (
    KCoreSelector,
    MaxDegreeSelector,
    ProximitySelector,
    RandomSelector,
)
from repro.algorithms.degree_discount import DegreeDiscountSelector
from repro.algorithms.pagerank import PageRankSelector
from repro.datasets.registry import load_dataset
from repro.diffusion.opoao import OPOAOModel
from repro.lcrb.evaluation import evaluate_protectors
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream
from repro.utils.tables import format_table


def test_extended_baselines_opoao(benchmark, report_result):
    rng = RngStream(91, name="extended-baselines")
    dataset = load_dataset("hep", scale=SCALE, seed=13)
    size = dataset.communities.size(dataset.rumor_community)
    seeds = draw_rumor_seeds(
        dataset.communities,
        dataset.rumor_community,
        max(2, size // 20),
        rng.fork("seeds"),
    )
    context = SelectionContext(dataset.graph, dataset.rumor_community_nodes, seeds)
    budget = len(context.rumor_seeds)
    runs = 15 if FAST else 50
    hops = 15 if FAST else 31

    selectors = {
        "Greedy": CELFGreedySelector(
            runs=4 if FAST else 8,
            max_candidates=60 if FAST else 150,
            rng=rng.fork("greedy"),
        ),
        "Proximity": ProximitySelector(rng=rng.fork("prox")),
        "MaxDegree": MaxDegreeSelector(),
        "PageRank": PageRankSelector(),
        "KCore": KCoreSelector(),
        "DegreeDiscount": DegreeDiscountSelector(),
        "Random": RandomSelector(rng=rng.fork("rand")),
    }

    def evaluate_all():
        rows = []
        for name, selector in selectors.items():
            protectors = selector.select(context, budget=budget)
            report = evaluate_protectors(
                context,
                protectors,
                OPOAOModel(),
                runs=runs,
                max_hops=hops,
                rng=rng.fork("eval", name),
            )
            rows.append(
                [
                    name,
                    len(protectors),
                    report.final_infected_mean,
                    f"{report.protected_bridge_fraction:.0%}",
                ]
            )
        noblocking = evaluate_protectors(
            context, [], OPOAOModel(), runs=runs, max_hops=hops, rng=rng.fork("nb")
        )
        rows.append(["NoBlocking", 0, noblocking.final_infected_mean, "-"])
        return rows

    rows = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    text = format_table(
        ["algorithm", "|P|", "final infected", "bridge ends safe"],
        rows,
        title=f"Extended baselines, OPOAO, |P|=|R|={budget} (runs={runs}, hops={hops})",
    )
    report_result(text, "extended_baselines")

    by_name = {row[0]: row for row in rows}
    worst = by_name["NoBlocking"][2]
    for name in selectors:
        assert by_name[name][2] <= worst + 1e-9, name
    # The paper's reason for dropping Random: it should trail Greedy.
    assert by_name["Greedy"][2] <= by_name["Random"][2] + 1e-9
