"""Ablation — do the reproduction claims survive a scale change?

DESIGN.md's substitution argument says the paper's comparative claims are
scale-free on the replicas. This bench runs the Table-I experiment at two
scales and checks the per-cell winners agree — the mechanical form of
"the shape holds at any scale" from the README.
"""

from benchmarks.conftest import FAST, SCALE
from repro.experiments.compare import compare_tables, table_winners
from repro.experiments.config import TableConfig
from repro.experiments.harness import run_table
from repro.experiments.report import table_to_dict
from repro.utils.tables import format_table


def test_scale_invariance_of_table1(benchmark, report_result):
    draws = 2 if FAST else 5
    small_scale = SCALE / 2
    rows = {
        "hep": (0.05, 0.10),
        "enron-small": (0.10,),
        "enron-large": (0.05,),
    }

    def run_both():
        small = run_table(
            TableConfig(name="t-small", rows=rows, draws=draws, scale=small_scale)
        )
        large = run_table(
            TableConfig(name="t-large", rows=rows, draws=draws, scale=SCALE)
        )
        return table_to_dict(small), table_to_dict(large)

    small_doc, large_doc = benchmark.pedantic(run_both, rounds=1, iterations=1)
    comparison = compare_tables(small_doc, large_doc)

    small_winners = table_winners(small_doc)
    table_rows = [
        [
            f"{cell[0]} @ {cell[1] * 100:.0f}%",
            small_winners[cell],
            table_winners(large_doc)[cell],
        ]
        for cell in sorted(small_winners)
    ]
    text = format_table(
        ["cell", f"winner @ scale {small_scale}", f"winner @ scale {SCALE}"],
        table_rows,
        title=(
            f"Scale invariance of Table I winners "
            f"(agreement={comparison['agreement']:.0%}, draws={draws})"
        ),
    )
    report_result(text, "scale_invariance")

    assert comparison["agreement"] == 1.0, comparison["disagreements"]
