"""Fig. 7 — infected nodes under DOAM, Hep collaboration network.

Paper setting: |P| predetermined by SCBG's own solution size; heuristics
randomly down-sampled from their full solutions; rumor saturates within
~4 steps. Expected shape: SCBG protects the most nodes (lowest final
infected), modulo the paper's own Fig. 7(a)-style small-rumor exception.
"""

from benchmarks.conftest import (
    assert_monotone_series,
    assert_noblocking_worst,
    figure_overrides,
)
from repro.experiments import paper_experiment, run_figure
from repro.experiments.report import figure_to_dict, render_figure


def test_fig7_doam_hep(benchmark, report_result):
    config = paper_experiment("fig7").scaled(**figure_overrides())
    result = benchmark.pedantic(run_figure, args=(config,), rounds=1, iterations=1)
    report_result(render_figure(result), "fig7", figure_to_dict(result))

    assert set(result.series) == {"SCBG", "Proximity", "MaxDegree", "NoBlocking"}
    assert_monotone_series(result.series)
    assert_noblocking_worst(result)
    # Rumor saturation: under DOAM most infection happens in the first
    # few steps (Section VI.B.2 reports ~4).
    noblocking = result.series["NoBlocking"]
    assert noblocking[6] >= 0.95 * noblocking[-1]
