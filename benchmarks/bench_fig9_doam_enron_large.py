"""Fig. 9 — infected nodes under DOAM, Enron e-mail network, large
rumor community.

Same protocol as Fig. 7 on the large, dense community — the regime where
the paper notes MaxDegree can overtake Proximity (higher average degree).
"""

from benchmarks.conftest import (
    assert_monotone_series,
    assert_noblocking_worst,
    figure_overrides,
)
from repro.experiments import paper_experiment, run_figure
from repro.experiments.report import figure_to_dict, render_figure


def test_fig9_doam_enron_large(benchmark, report_result):
    config = paper_experiment("fig9").scaled(**figure_overrides())
    result = benchmark.pedantic(run_figure, args=(config,), rounds=1, iterations=1)
    report_result(render_figure(result), "fig9", figure_to_dict(result))

    assert_monotone_series(result.series)
    assert_noblocking_worst(result)
    # SCBG's protector budget grows sub-linearly versus the rumor size on
    # the large community (Table I's narrative) — sanity-check that the
    # predetermined |P| stayed far below |B|.
    assert result.protectors_used["SCBG"] < result.bridge_ends
