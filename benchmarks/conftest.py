"""Shared infrastructure for the benchmark suite.

Each benchmark regenerates one table or figure of the paper's evaluation
section, prints the same rows/series the paper reports (straight to the
terminal, bypassing capture), and archives the rendered text plus a JSON
document under ``benchmarks/results/``.

Scales are controlled by the ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_FAST``
environment variables so CI can run a quick pass while a full laptop run
uses the paper-shaped defaults.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry, use_registry

RESULTS_DIR = Path(__file__).parent / "results"

#: Checked-in work-counter baselines for the CI regression gate.
BASELINES_DIR = Path(__file__).parent / "baselines"

#: Schema tag of the emitted ``BENCH_<name>.json`` documents.
BENCH_SCHEMA = "repro.bench/v1"

#: Set REPRO_BENCH_FAST=1 for a fast smoke pass of every benchmark.
FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"

#: Replica scale for all benchmarks (default 0.1 = one tenth of the
#: paper's node counts; see DESIGN.md §4).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05" if FAST else "0.1"))


def figure_overrides() -> dict:
    """Config overrides applied to every figure benchmark."""
    overrides = {"scale": SCALE}
    if FAST:
        overrides.update(runs=10, draws=1, greedy_runs=4, greedy_max_candidates=60)
    return overrides


def table_overrides() -> dict:
    """Config overrides applied to the table benchmark."""
    overrides = {"scale": SCALE}
    if FAST:
        overrides.update(draws=3)
    return overrides


class BenchMetrics:
    """Deterministic work-counter collection for one benchmark.

    Usage: run the *deterministic* workload (fixed seeds, fixed
    replica counts — never pytest-benchmark's adaptive timing rounds)
    inside ``collect()``, then ``emit(name)`` to write
    ``benchmarks/results/BENCH_<name>.json``. The CI regression gate
    (``benchmarks/check_regression.py``) compares the counters — not
    the wall clock, which is runner noise — against the checked-in
    baselines in ``benchmarks/baselines/``.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.wall_clock_seconds = 0.0

    @contextmanager
    def collect(self):
        """Route ``repro.obs`` metrics from the body into this registry."""
        started = time.perf_counter()
        try:
            with use_registry(self.registry):
                yield self.registry
        finally:
            self.wall_clock_seconds += time.perf_counter() - started

    def document(self, name: str, context: dict = None) -> dict:
        snapshot = self.registry.to_dict()
        document = {
            "schema": BENCH_SCHEMA,
            "name": name,
            "fast": FAST,
            "scale": SCALE,
            "wall_clock_seconds": self.wall_clock_seconds,
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
            "histograms": snapshot["histograms"],
            "timers": snapshot["timers"],
        }
        if context:
            document["context"] = context
        return document

    def emit(self, name: str, context: dict = None) -> Path:
        """Write the ``BENCH_<name>.json`` document; returns its path."""
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(self.document(name, context), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        return path


@pytest.fixture
def bench_metrics():
    """A fresh :class:`BenchMetrics` collector per benchmark test."""
    return BenchMetrics()


@pytest.fixture
def report_result(capfd):
    """Print a rendered result to the real terminal and archive it.

    Returns a callable ``report(text, name, payload=None)``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def report(text: str, name: str, payload: dict = None) -> None:
        with capfd.disabled():
            print(f"\n================ {name} ================")
            print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        if payload is not None:
            from repro.experiments.report import save_json

            save_json(payload, RESULTS_DIR / f"{name}.json")

    return report


def assert_monotone_series(series) -> None:
    """Cumulative infected counts never decrease."""
    for name, values in series.items():
        assert all(
            b >= a - 1e-9 for a, b in zip(values, values[1:])
        ), f"series {name} not monotone"


def assert_noblocking_worst(result) -> None:
    """Every blocking strategy ends at or below the NoBlocking line."""
    worst = result.final_infected("NoBlocking")
    for name in result.series:
        if name != "NoBlocking":
            assert result.final_infected(name) <= worst + 1e-9, (
                f"{name} ended above NoBlocking"
            )
