"""Benchmark-regression gate over ``repro.obs`` work counters.

CI runs the perf benchmarks under ``REPRO_BENCH_FAST=1``; each emits a
``benchmarks/results/BENCH_<name>.json`` document (see
:class:`benchmarks.conftest.BenchMetrics`). This script compares those
documents' **work counters** — RR sets sampled, sigma evaluations, BFS
node/edge visits, and friends — against the checked-in baselines in
``benchmarks/baselines/`` and fails when any counter grew by more than
the tolerance (default 10%).

Counters, not wall clock: every counter is a deterministic function of
the seeded RNG streams (:mod:`repro.rng` derives substreams via
sha256), so the comparison is exact and immune to runner noise. A >10%
counter jump means the algorithm is genuinely doing more work, not that
the runner was busy.

Usage::

    python benchmarks/check_regression.py              # gate (exit 1 on fail)
    python benchmarks/check_regression.py --update     # refresh baselines

Run benchmarks first so ``benchmarks/results/BENCH_*.json`` exist::

    REPRO_BENCH_FAST=1 PYTHONPATH=src python -m pytest \
        benchmarks/bench_perf_simulators.py benchmarks/bench_sketch_vs_mc.py
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path
from typing import Dict, List, Tuple

BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_BASELINES = BENCH_DIR / "baselines"
DEFAULT_RESULTS = BENCH_DIR / "results"

#: Maximum tolerated relative counter growth before the gate fails.
DEFAULT_TOLERANCE = 0.10

#: Keys that must agree between a baseline and a result for counter
#: comparison to be meaningful at all.
_CONFIG_KEYS = ("schema", "name", "fast", "scale")


def load_document(path: Path) -> dict:
    """Load one BENCH json document."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare_documents(
    baseline: dict, result: dict, tolerance: float = DEFAULT_TOLERANCE
) -> Tuple[List[str], List[str]]:
    """Compare one result against its baseline.

    Returns ``(failures, notes)``: failures are gate-breaking strings
    (config mismatch, missing counter, growth beyond ``tolerance``);
    notes are informational (counters that shrank or were added).
    """
    failures: List[str] = []
    notes: List[str] = []
    for key in _CONFIG_KEYS:
        if baseline.get(key) != result.get(key):
            failures.append(
                f"config mismatch on {key!r}: baseline={baseline.get(key)!r} "
                f"result={result.get(key)!r} (rerun with the baseline's "
                f"REPRO_BENCH_FAST/REPRO_BENCH_SCALE settings)"
            )
    if failures:
        return failures, notes

    base_counters: Dict[str, float] = baseline.get("counters", {})
    new_counters: Dict[str, float] = result.get("counters", {})
    for name in sorted(base_counters):
        base_value = base_counters[name]
        if name not in new_counters:
            failures.append(f"counter {name!r} missing from current results")
            continue
        current = new_counters[name]
        allowed = base_value * (1.0 + tolerance)
        if current > allowed:
            grew = (
                f"{(current / base_value - 1.0) * 100:.1f}%"
                if base_value
                else "from zero"
            )
            failures.append(
                f"counter {name!r} regressed: {base_value} -> {current} "
                f"(+{grew}, tolerance {tolerance * 100:.0f}%)"
            )
        elif current < base_value:
            notes.append(
                f"counter {name!r} improved: {base_value} -> {current}"
            )
    for name in sorted(set(new_counters) - set(base_counters)):
        notes.append(
            f"new counter {name!r}={new_counters[name]} has no baseline "
            f"(run with --update to record it)"
        )
    return failures, notes


def summary_table(failures: List[Tuple[str, str]]) -> str:
    """Aligned cross-document table of every gate failure.

    One row per failure so a run that regresses several counters in
    several documents reports the whole damage in one place instead of
    making the operator fix-and-rerun one counter at a time.
    """
    documents = sorted({document for document, _ in failures})
    width = max(len("document"), *(len(document) for document, _ in failures))
    lines = [
        f"REGRESSION SUMMARY: {len(failures)} failure(s) across "
        f"{len(documents)} document(s)",
        f"  {'document':<{width}}  failure",
        f"  {'-' * width}  -------",
    ]
    for document, failure in failures:
        lines.append(f"  {document:<{width}}  {failure}")
    return "\n".join(lines)


def check(
    baselines_dir: Path, results_dir: Path, tolerance: float
) -> int:
    """Gate every baseline against its result; returns a process exit code.

    Every document is compared even after the first failure; all
    regressing counters land in one :func:`summary_table` at the end.
    """
    baselines = sorted(baselines_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines under {baselines_dir}")
        return 2
    all_failures: List[Tuple[str, str]] = []
    for baseline_path in baselines:
        result_path = results_dir / baseline_path.name
        print(f"== {baseline_path.name}")
        if not result_path.exists():
            message = f"no result emitted at {result_path}"
            print(f"  FAIL: {message}")
            all_failures.append((baseline_path.name, message))
            continue
        failures, notes = compare_documents(
            load_document(baseline_path), load_document(result_path), tolerance
        )
        for note in notes:
            print(f"  note: {note}")
        for failure in failures:
            print(f"  FAIL: {failure}")
        all_failures.extend(
            (baseline_path.name, failure) for failure in failures
        )
        if not failures:
            print("  ok")
    baseline_names = {path.name for path in baselines}
    for result_path in sorted(results_dir.glob("BENCH_*.json")):
        # A result with no checked-in baseline yet is a warning, not a
        # failure: a freshly added benchmark must be able to run in CI
        # before its first baseline lands.
        if result_path.name not in baseline_names:
            print(f"== {result_path.name}")
            print(
                f"  warn: no baseline for {result_path.name}; run "
                f"'python benchmarks/check_regression.py --update' and "
                f"commit benchmarks/baselines/{result_path.name}"
            )
    if all_failures:
        print()
        print(summary_table(all_failures))
        return 1
    return 0


def update(baselines_dir: Path, results_dir: Path) -> int:
    """Copy every emitted result over its baseline (refresh mode)."""
    results = sorted(results_dir.glob("BENCH_*.json"))
    if not results:
        print(f"error: no BENCH_*.json results under {results_dir}")
        return 2
    baselines_dir.mkdir(exist_ok=True)
    for result_path in results:
        target = baselines_dir / result_path.name
        shutil.copyfile(result_path, target)
        print(f"updated {target}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baselines", type=Path, default=DEFAULT_BASELINES,
        help="directory of checked-in BENCH_*.json baselines",
    )
    parser.add_argument(
        "--results", type=Path, default=DEFAULT_RESULTS,
        help="directory of freshly emitted BENCH_*.json results",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="max tolerated relative counter growth (default 0.10)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="refresh baselines from the current results instead of gating",
    )
    args = parser.parse_args(argv)
    if args.update:
        return update(args.baselines, args.results)
    return check(args.baselines, args.results, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
