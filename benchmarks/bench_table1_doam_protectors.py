"""Table I — number of selected protectors under DOAM.

Paper layout: rows are (dataset, |R| as a % of |C|) cells, columns are
SCBG / Proximity / MaxDegree, each cell the average protector count over
repeated random rumor draws. Expected shape (Section VI.B.2):

* SCBG needs the fewest protectors in (almost) every cell — the paper's
  single exception is Hep at |R| = 1%, where Proximity can win.
* SCBG's count grows much more slowly with |R| than both heuristics.
* Proximity generally beats MaxDegree.
"""

from benchmarks.conftest import table_overrides
from repro.experiments import paper_experiment, run_table
from repro.experiments.harness import MAXDEGREE, PROXIMITY, SCBG
from repro.experiments.report import render_table, table_to_dict


def test_table1_doam_protectors(benchmark, report_result):
    config = paper_experiment("table1").scaled(**table_overrides())
    result = benchmark.pedantic(run_table, args=(config,), rounds=1, iterations=1)
    report_result(render_table(result), "table1", table_to_dict(result))

    rows = result.rows
    assert len(rows) == 9

    # SCBG wins all but at most one cell (the paper's Hep 1% exception).
    scbg_wins = sum(
        1 for row in rows if row[SCBG] <= min(row[PROXIMITY], row[MAXDEGREE])
    )
    assert scbg_wins >= len(rows) - 1, f"SCBG won only {scbg_wins}/{len(rows)} cells"

    # SCBG's growth across each dataset's |R| sweep is the slowest.
    by_dataset = {}
    for row in rows:
        by_dataset.setdefault(row["dataset"], []).append(row)
    for dataset, dataset_rows in by_dataset.items():
        dataset_rows.sort(key=lambda r: r["fraction"])
        scbg_growth = dataset_rows[-1][SCBG] - dataset_rows[0][SCBG]
        proximity_growth = dataset_rows[-1][PROXIMITY] - dataset_rows[0][PROXIMITY]
        assert scbg_growth <= proximity_growth + 1e-9, (
            f"SCBG grew faster than Proximity on {dataset}"
        )
