"""Fig. 8 — infected nodes under DOAM, Enron e-mail network, small
rumor community.

Same protocol as Fig. 7 on the Enron replica's small community.
"""

from benchmarks.conftest import (
    assert_monotone_series,
    assert_noblocking_worst,
    figure_overrides,
)
from repro.experiments import paper_experiment, run_figure
from repro.experiments.report import figure_to_dict, render_figure


def test_fig8_doam_enron_small(benchmark, report_result):
    config = paper_experiment("fig8").scaled(**figure_overrides())
    result = benchmark.pedantic(run_figure, args=(config,), rounds=1, iterations=1)
    report_result(render_figure(result), "fig8", figure_to_dict(result))

    assert_monotone_series(result.series)
    assert_noblocking_worst(result)
    # SCBG protects every bridge end by construction, so it must not lose
    # to NoBlocking anywhere along the series either.
    for hop, value in enumerate(result.series["SCBG"]):
        assert value <= result.series["NoBlocking"][hop] + 1e-9
