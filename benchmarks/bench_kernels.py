"""Sigma-throughput benchmarks of the batched kernel backends.

Not a paper figure — this measures the ISSUE-3 tentpole directly: σ̂
evaluations per second through :class:`repro.kernels.sigma.\
BatchedSigmaEvaluator` on the enron-small replica, once per available
backend. pytest-benchmark provides the timing statistics; a fixed,
seeded replay under the :class:`benchmarks.conftest.BenchMetrics`
collector emits the deterministic work counters (``kernel.worlds``,
``kernel.hops``, ``kernel.activations``, ``selector.sigma_evaluations``)
as ``BENCH_kernels_<backend>.json`` for the CI regression gate.

The two backends run the *same* candidate workload with the same seeds,
so comparing their BENCH documents' wall clocks reproduces the ≥5×
acceptance measurement (``repro bench --backend numpy`` is the CLI
equivalent); their ``kernel.*`` counters differ only through the
native samplers' different random streams.
"""

import pytest

from benchmarks.conftest import FAST, SCALE
from repro.algorithms.base import SelectionContext
from repro.algorithms.greedy import candidate_pool
from repro.datasets.registry import load_dataset
from repro.diffusion.opoao import OPOAOModel
from repro.kernels.registry import available_backends
from repro.kernels.sigma import BatchedSigmaEvaluator
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream

#: Coupled worlds per sigma evaluation (the CLI bench default is 50).
RUNS = 16 if FAST else 50

#: Candidate protectors evaluated per timing/counter pass.
CANDIDATES = 4 if FAST else 10

MAX_HOPS = 31


@pytest.fixture(scope="module")
def instance():
    dataset = load_dataset("enron-small", scale=SCALE, seed=13)
    size = dataset.communities.size(dataset.rumor_community)
    rumor_labels = draw_rumor_seeds(
        dataset.communities,
        dataset.rumor_community,
        max(2, size // 10),
        RngStream(51, name="kernels-bench"),
    )
    context = SelectionContext(
        dataset.graph, dataset.rumor_community_nodes, rumor_labels
    )
    candidates = candidate_pool(context) or candidate_pool(context, "all")
    return context, candidates[:CANDIDATES]


def make_evaluator(context, backend_name):
    return BatchedSigmaEvaluator(
        context,
        model=OPOAOModel(),
        runs=RUNS,
        max_hops=MAX_HOPS,
        rng=RngStream(13, name="kernels-sigma"),
        backend=backend_name,
    )


def sigma_sweep(evaluator, candidates):
    return [evaluator.sigma([candidate]) for candidate in candidates]


@pytest.mark.parametrize("backend_name", available_backends())
def test_kernels_sigma_throughput(benchmark, instance, bench_metrics,
                                  backend_name):
    context, candidates = instance
    assert candidates, "enron-small replica must yield candidate protectors"

    # Timing pass: worlds + baseline sampled once outside the timer (the
    # coupled-CRN pattern every selector uses), candidates replayed inside.
    evaluator = make_evaluator(context, backend_name)
    evaluator.baseline  # warm the world sample + baseline race
    benchmark(lambda: sigma_sweep(evaluator, candidates))

    # Deterministic counter pass for the regression gate: a fresh
    # evaluator (fixed seed), exactly one baseline + CANDIDATES sweeps.
    with bench_metrics.collect():
        gated = make_evaluator(context, backend_name)
        sigmas = sigma_sweep(gated, candidates)
    assert all(value >= 0.0 for value in sigmas)
    bench_metrics.emit(
        f"kernels_{backend_name}",
        context={
            "backend": backend_name,
            "runs": RUNS,
            "candidates": len(candidates),
            "max_hops": MAX_HOPS,
        },
    )
