"""Ablation — do the Table-I winners survive a different master seed?

Companion to the scale-invariance bench: same cells, three unrelated
master seeds (new replica graphs, new communities, new rumor draws). The
per-cell winners must agree across seeds for the reproduction's ordinal
claims to be seed-free.
"""

from benchmarks.conftest import FAST, SCALE
from repro.experiments.compare import compare_tables, table_winners
from repro.experiments.config import TableConfig
from repro.experiments.harness import run_table
from repro.experiments.report import table_to_dict
from repro.utils.tables import format_table

SEEDS = (13, 101, 4242)


def test_seed_sensitivity_of_table1(benchmark, report_result):
    draws = 2 if FAST else 4
    rows = {
        "hep": (0.05, 0.10),
        "enron-small": (0.10,),
        "enron-large": (0.05,),
    }

    def run_all_seeds():
        return [
            table_to_dict(
                run_table(
                    TableConfig(
                        name=f"t-seed-{seed}", rows=rows, draws=draws, scale=SCALE,
                        seed=seed,
                    )
                )
            )
            for seed in SEEDS
        ]

    documents = benchmark.pedantic(run_all_seeds, rounds=1, iterations=1)
    reference = documents[0]
    agreements = [
        compare_tables(reference, other)["agreement"] for other in documents[1:]
    ]

    winner_columns = [table_winners(doc) for doc in documents]
    table_rows = [
        [
            f"{cell[0]} @ {cell[1] * 100:.0f}%",
            *(winners[cell] for winners in winner_columns),
        ]
        for cell in sorted(winner_columns[0])
    ]
    text = format_table(
        ["cell", *(f"seed {seed}" for seed in SEEDS)],
        table_rows,
        title=(
            "Seed sensitivity of Table I winners "
            f"(agreement vs seed {SEEDS[0]}: "
            + ", ".join(f"{a:.0%}" for a in agreements)
            + f"; draws={draws})"
        ),
    )
    report_result(text, "seed_sensitivity")

    for agreement in agreements:
        assert agreement == 1.0
