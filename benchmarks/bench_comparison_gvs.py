"""Comparison — LCRB's bridge-end objective vs GVS's decontamination
objective (related work [26]).

The paper positions LCRB against Nguyen et al.'s β-Node Protector
problems: LCRB buys *guaranteed containment at the community boundary*
with few protectors, while GVS buys *network-wide infection reduction*
with a rate target. This bench runs both on the same instance and prints
protectors used, bridge ends saved, and total infections — showing the
trade the paper's formulation makes.
"""

from benchmarks.conftest import FAST, SCALE
from repro.algorithms.base import SelectionContext
from repro.algorithms.gvs import GreedyViralStopper
from repro.algorithms.scbg import SCBGSelector
from repro.datasets.registry import load_dataset
from repro.diffusion.doam import DOAMModel
from repro.lcrb.evaluation import evaluate_protectors
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream
from repro.utils.tables import format_table


def _instance():
    dataset = load_dataset("enron-small", scale=SCALE, seed=13)
    size = dataset.communities.size(dataset.rumor_community)
    seeds = draw_rumor_seeds(
        dataset.communities,
        dataset.rumor_community,
        max(2, size // 10),
        RngStream(36, name="gvs-comparison"),
    )
    return SelectionContext(dataset.graph, dataset.rumor_community_nodes, seeds)


def test_comparison_scbg_vs_gvs(benchmark, report_result):
    context = _instance()
    scbg_picks = SCBGSelector().select(context)
    gvs = GreedyViralStopper(
        beta=0.5,
        runs=1,
        max_candidates=60 if FAST else 150,
        rng=RngStream(37),
    )
    gvs_picks = benchmark.pedantic(gvs.select, args=(context,), rounds=1, iterations=1)

    rows = []
    for name, picks in (("SCBG (LCRB-D)", scbg_picks), ("GVS (beta=0.5)", gvs_picks)):
        report = evaluate_protectors(context, picks, DOAMModel(), runs=1)
        rows.append(
            [
                name,
                len(picks),
                f"{report.protected_bridge_fraction:.0%}",
                report.final_infected_mean,
            ]
        )
    text = format_table(
        ["algorithm", "|P|", "bridge ends safe", "total infected"],
        rows,
        title=f"Objective comparison on enron-small (|B|={len(context.bridge_ends)})",
    )
    report_result(text, "comparison_gvs")

    # LCRB-D guarantees its own objective...
    scbg_report = evaluate_protectors(context, scbg_picks, DOAMModel(), runs=1)
    assert scbg_report.protected_bridge_fraction == 1.0
    # ...while GVS guarantees its rate target on total infections.
    from repro.algorithms.gvs import InfectionEstimator

    estimator = InfectionEstimator(context, rng=RngStream(38))
    baseline = estimator.expected_infections([])
    assert estimator.expected_infections(gvs_picks) <= 0.5 * baseline
