"""Ablation — how much does repeat selection slow OPOAO down?

Section III.A: "the speed of influence spread is slow under this model
for the existence of repeat selection". This bench runs the same seeds
under plain OPOAO and the no-repeat variant and reports the NoBlocking
infection curves and the hop at which each reaches half the network —
quantifying the mechanism the paper only describes qualitatively.
"""

from benchmarks.conftest import FAST, SCALE
from repro.datasets.registry import load_dataset
from repro.diffusion.base import SeedSets
from repro.diffusion.opoao import OPOAOModel
from repro.diffusion.opoao_norepeat import OPOAONoRepeatModel
from repro.diffusion.simulation import MonteCarloSimulator
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream
from repro.utils.tables import format_series


def _first_hop_reaching(series, target):
    for hop, value in enumerate(series):
        if value >= target:
            return hop
    return len(series) - 1


def test_ablation_repeat_selection(benchmark, report_result):
    dataset = load_dataset("hep", scale=SCALE, seed=13)
    indexed = dataset.graph.to_indexed()
    size = dataset.communities.size(dataset.rumor_community)
    rumor_labels = draw_rumor_seeds(
        dataset.communities,
        dataset.rumor_community,
        max(2, size // 20),
        RngStream(95, name="repeat-ablation"),
    )
    seeds = SeedSets(rumors=indexed.indices(rumor_labels))
    runs = 10 if FAST else 40
    hops = 31

    def simulate_both():
        plain = MonteCarloSimulator(OPOAOModel(), runs=runs, max_hops=hops).simulate(
            indexed, seeds, rng=RngStream(96)
        )
        norepeat = MonteCarloSimulator(
            OPOAONoRepeatModel(), runs=runs, max_hops=hops
        ).simulate(indexed, seeds, rng=RngStream(96))
        return plain, norepeat

    plain, norepeat = benchmark.pedantic(simulate_both, rounds=1, iterations=1)

    series = {
        "OPOAO": [round(v, 1) for v in plain.infected_per_hop],
        "NoRepeat": [round(v, 1) for v in norepeat.infected_per_hop],
    }
    half = indexed.node_count / 2
    summary = (
        f"hops to reach |N|/2: OPOAO={_first_hop_reaching(series['OPOAO'], half)}, "
        f"NoRepeat={_first_hop_reaching(series['NoRepeat'], half)}"
    )
    text = (
        format_series(series, title="Repeat-selection ablation (NoBlocking curves)")
        + "\n"
        + summary
    )
    report_result(text, "ablation_repeat_selection")

    # Memory can only speed things up: the no-repeat curve dominates.
    for hop in range(hops + 1):
        assert series["NoRepeat"][hop] >= series["OPOAO"][hop] - 1.0, hop