"""Ablation — CELF lazy greedy vs exhaustive greedy (Algorithm 1).

The paper's conclusion names greedy's cost as the open problem; CELF is
the standard submodularity-based answer. σ is submodular in expectation
(Theorem 1) but the finite-sample estimate σ̂ can violate submodularity by
sampling noise, so CELF's stale bounds may occasionally reorder
equal-quality picks; the correctness contract is therefore *solution
quality*, not sequence identity. This bench verifies CELF's protector set
achieves at least 95% of exhaustive greedy's σ̂ while reporting the
σ-evaluation counts and wall-clock of each.
"""

from benchmarks.conftest import FAST, SCALE
from repro.algorithms.base import SelectionContext
from repro.algorithms.celf import CELFGreedySelector
from repro.algorithms.greedy import GreedySelector
from repro.datasets.registry import load_dataset
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream
from repro.utils.tables import format_table
from repro.utils.timer import Timer


def _instance():
    dataset = load_dataset("enron-small", scale=SCALE, seed=13)
    size = dataset.communities.size(dataset.rumor_community)
    seeds = draw_rumor_seeds(
        dataset.communities,
        dataset.rumor_community,
        max(2, size // 10),
        RngStream(32, name="ablation-celf"),
    )
    return SelectionContext(dataset.graph, dataset.rumor_community_nodes, seeds)


def test_ablation_celf_vs_exhaustive(benchmark, report_result):
    context = _instance()
    budget = 3 if FAST else 5
    runs = 4 if FAST else 6
    cap = 40 if FAST else 80

    greedy = GreedySelector(runs=runs, max_candidates=cap, rng=RngStream(33))
    celf = CELFGreedySelector(runs=runs, max_candidates=cap, rng=RngStream(33))

    greedy_timer = Timer("greedy")
    with greedy_timer:
        greedy_picks = greedy.select(context, budget=budget)
    celf_picks = benchmark.pedantic(
        celf.select, args=(context,), kwargs={"budget": budget}, rounds=1, iterations=1
    )

    assert celf.last_evaluations <= greedy.last_evaluations

    # Judge both solutions on one independent referee estimator.
    referee = GreedySelector(runs=2 * runs, rng=RngStream(99)).make_estimator(context)
    greedy_sigma = referee.sigma(greedy_picks)
    celf_sigma = referee.sigma(celf_picks)
    assert celf_sigma >= 0.95 * greedy_sigma - 0.5, (
        f"CELF quality {celf_sigma} fell below greedy {greedy_sigma}"
    )

    rows = [
        ["protectors selected", len(greedy_picks), len(celf_picks)],
        ["referee sigma", round(greedy_sigma, 2), round(celf_sigma, 2)],
        ["sigma evaluations", greedy.last_evaluations, celf.last_evaluations],
        [
            "evaluations saved",
            "-",
            f"{100 * (1 - celf.last_evaluations / greedy.last_evaluations):.0f}%",
        ],
        ["exhaustive wall-clock (s)", round(greedy_timer.elapsed, 2), "-"],
    ]
    text = format_table(
        ["metric", "exhaustive greedy", "CELF"],
        rows,
        title=f"CELF ablation (budget={budget}, pool<=${cap}, runs={runs})".replace(
            "$", ""
        ),
    )
    report_result(text, "ablation_celf")
