"""Serve-layer benchmark: warm-index loadgen under the regression gate.

Measures the ISSUE-8 tentpole: a :class:`repro.serve.RumorBlockingService`
answering a deterministic query/update mix through
:func:`repro.serve.run_loadgen`. Two legs:

* **enron-small** (gated) — fixed seeds and a fixed update cadence make
  every ``serve.*`` counter deterministic, so ``BENCH_serve.json`` sits
  under ``benchmarks/check_regression.py`` like the other benches. The
  leg also asserts the issue's acceptance gates inline: warm-index
  p50 < 50 ms and a ≥ 10x cold/warm RR-set sampling ratio.
* **1M-node synthetic** (full runs only) — the same workload over
  :func:`repro.datasets.synthetic.large_indexed_network`, emitted as
  ``BENCH_serve_large.json``. No baseline is checked in, so the gate
  reports it as informational rather than failing.

Latency percentiles and qps land in the document's ``context`` for
humans; the gate itself only diffs counters (wall clock is runner
noise).
"""

from repro.datasets import load_dataset
from repro.datasets.synthetic import large_indexed_network
from repro.serve import RumorBlockingService, run_loadgen

from benchmarks.conftest import FAST

import pytest

#: The tuned enron-small configuration. steps=8 keeps world sampling
#: (and therefore footprints) small enough that a single-edge update
#: only invalidates part of the index; update_every=20 models a
#: read-heavy serving mix (2 update batches over 40 queries).
SERVE_CONFIG = dict(steps=8, seed=13, initial_worlds=64, max_worlds=128)
LOADGEN_CONFIG = dict(
    queries=40,
    update_every=20,
    update_size=1,
    seed_sets=2,
    budget=4,
    epsilon=0.3,
    delta=0.1,
    seed=13,
)

#: Acceptance gates from the issue.
WARM_P50_MS_LIMIT = 50.0
COLD_TO_WARM_RATIO_FLOOR = 10.0


def loadgen_context(report: dict) -> dict:
    """The human-facing slice of a loadgen report (no raw trace)."""
    return {
        "qps": report["qps"],
        "latency_ms": report["latency_ms"],
        "cold_queries": report["cold_queries"],
        "warm_queries": report["warm_queries"],
        "cold_rrsets_mean": report["cold_rrsets_mean"],
        "warm_rrsets_mean": report["warm_rrsets_mean"],
        "cold_to_warm_ratio": report["cold_to_warm_ratio"],
        "rrsets_invalidated_total": report["rrsets_invalidated_total"],
        "graph_version": report["graph_version"],
    }


def test_serve_enron_small(bench_metrics):
    dataset = load_dataset("enron-small", scale=0.05, seed=13)
    indexed = dataset.graph.to_indexed()
    community = sorted(indexed.indices(dataset.rumor_community_nodes))
    with bench_metrics.collect():
        service = RumorBlockingService(indexed, community, **SERVE_CONFIG)
        report = run_loadgen(service, **LOADGEN_CONFIG)

    # The issue's acceptance gates: a warm index answers repeat queries
    # fast and almost sampling-free.
    assert report["latency_ms"]["warm_p50"] < WARM_P50_MS_LIMIT
    assert report["cold_to_warm_ratio"] >= COLD_TO_WARM_RATIO_FLOOR
    # Sampling counts are seed-deterministic; the gated counters must
    # reconcile with the report the loadgen returned.
    counters = bench_metrics.registry.counter_values()
    assert counters["serve.queries"] == LOADGEN_CONFIG["queries"]
    assert counters["serve.rrsets.sampled"] == report["rrsets_sampled_total"]
    assert (
        counters["serve.rrsets.invalidated"]
        == report["rrsets_invalidated_total"]
    )
    bench_metrics.emit("serve", context=loadgen_context(report))


@pytest.mark.skipif(FAST, reason="1M-node leg runs in full benchmarks only")
def test_serve_large_synthetic(bench_metrics):
    graph, community_of = large_indexed_network(
        1_000_000, avg_degree=6.0, communities=100, mixing=0.05
    )
    community = [
        node for node in range(graph.node_count) if community_of[node] == 0
    ]
    with bench_metrics.collect():
        service = RumorBlockingService(
            graph,
            community,
            steps=4,
            seed=13,
            initial_worlds=16,
            max_worlds=16,
        )
        report = run_loadgen(
            service,
            queries=6,
            update_every=3,
            update_size=1,
            seed_sets=2,
            budget=2,
            epsilon=0.45,
            delta=0.2,
            seed=13,
        )
    assert report["warm_queries"] == 4
    bench_metrics.emit("serve_large", context=loadgen_context(report))
