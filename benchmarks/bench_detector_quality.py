"""Ablation — community-detector quality feeding the pipeline.

The paper delegates community detection to Louvain [25] and cites the
comparative analysis of [32]. The LCRB pipeline's bridge-end set depends
entirely on the detected cover, so detector quality is a hidden input to
every experiment. This bench scores the three detectors in this library
against planted ground truth (NMI/purity/wall-clock) at increasing mixing,
confirming Louvain's adequacy across the regimes the replicas use.
"""

from benchmarks.conftest import FAST
from repro.community.label_prop import label_propagation
from repro.community.louvain import louvain
from repro.community.metrics import normalized_mutual_information, purity
from repro.graph.generators import planted_partition
from repro.rng import RngStream
from repro.utils.tables import format_table
from repro.utils.timer import Timer


def test_detector_quality(benchmark, report_result):
    block = 20 if FAST else 40
    blocks = [block] * (3 if FAST else 4)
    p_in = 0.3
    regimes = [0.005, 0.02, 0.05]

    def evaluate():
        rows = []
        for p_out in regimes:
            graph, truth = planted_partition(
                blocks, p_in, p_out, RngStream(81).fork("net", p_out), directed=True
            )
            detectors = {
                "louvain": lambda g: louvain(g, rng=RngStream(82)).membership,
                "label-prop": lambda g: label_propagation(g, rng=RngStream(83)),
            }
            for name, detect in detectors.items():
                timer = Timer(name)
                with timer:
                    found = detect(graph)
                rows.append(
                    [
                        f"{p_out:.3f}",
                        name,
                        normalized_mutual_information(found, truth),
                        purity(found, truth),
                        round(timer.elapsed, 3),
                    ]
                )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    text = format_table(
        ["p_out", "detector", "NMI", "purity", "seconds"],
        [[r[0], r[1], f"{r[2]:.3f}", f"{r[3]:.3f}", r[4]] for r in rows],
        title=f"Detector quality on planted partitions (blocks={blocks}, p_in={p_in})",
    )
    report_result(text, "detector_quality")

    # Louvain must recover the clean regimes essentially perfectly.
    louvain_rows = [r for r in rows if r[1] == "louvain"]
    assert louvain_rows[0][2] > 0.95  # NMI at the cleanest regime
    assert all(r[3] > 0.8 for r in louvain_rows)  # purity everywhere
