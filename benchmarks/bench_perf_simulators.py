"""Performance microbenchmarks of the diffusion engines.

Not a paper figure — these measure the substrate itself (runs/second of
each model on a replica-scale graph), using pytest-benchmark's real
multi-round statistics. Useful for catching performance regressions in
the hot loops the Monte-Carlo experiments hammer.

Each test additionally replays a **fixed, seeded** workload under a
:class:`benchmarks.conftest.BenchMetrics` collector and emits its work
counters (node/edge visits, rounds) as ``BENCH_perf_<model>.json`` —
the deterministic signal the CI regression gate compares against
``benchmarks/baselines/``. The pytest-benchmark timing calls stay
*outside* the collector: their adaptive round counts would make the
counters nondeterministic.
"""

import pytest

from benchmarks.conftest import FAST, SCALE
from repro.datasets.registry import load_dataset
from repro.diffusion.base import SeedSets
from repro.diffusion.doam import DOAMModel
from repro.diffusion.ic import CompetitiveICModel
from repro.diffusion.lt import CompetitiveLTModel
from repro.diffusion.opoao import OPOAOModel
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream

#: Replicas replayed for counter collection (fixed, not adaptive).
METRIC_RUNS = 5 if FAST else 20


@pytest.fixture(scope="module")
def instance():
    dataset = load_dataset("enron-small", scale=SCALE, seed=13)
    indexed = dataset.graph.to_indexed()
    size = dataset.communities.size(dataset.rumor_community)
    rumor_labels = draw_rumor_seeds(
        dataset.communities,
        dataset.rumor_community,
        max(2, size // 10),
        RngStream(51, name="perf"),
    )
    rumors = indexed.indices(rumor_labels)
    # A handful of arbitrary protectors outside the rumor seeds.
    protectors = [i for i in range(indexed.node_count) if i not in set(rumors)][:5]
    return indexed, SeedSets(rumors=rumors, protectors=protectors)


def _collect_counters(bench_metrics, name, model, indexed, seeds, *,
                      seed, max_hops):
    """Replay METRIC_RUNS fixed replicas under the collector and emit."""
    rng = RngStream(seed, name="perf-metrics")
    with bench_metrics.collect():
        for replica in range(METRIC_RUNS):
            model.run(indexed, seeds, rng=rng.replica(replica), max_hops=max_hops)
    return bench_metrics.emit(name, context={"metric_runs": METRIC_RUNS})


def test_perf_doam_run(benchmark, instance, bench_metrics):
    indexed, seeds = instance
    model = DOAMModel()
    result = benchmark(lambda: model.run(indexed, seeds, max_hops=64))
    assert result.infected_count > 0
    _collect_counters(
        bench_metrics, "perf_doam", model, indexed, seeds, seed=152, max_hops=64
    )


def test_perf_opoao_run(benchmark, instance, bench_metrics):
    indexed, seeds = instance
    model = OPOAOModel()
    rng = RngStream(52)
    counter = iter(range(10**9))

    def run_once():
        return model.run(indexed, seeds, rng=rng.replica(next(counter)), max_hops=31)

    result = benchmark(run_once)
    assert result.infected_count > 0
    _collect_counters(
        bench_metrics, "perf_opoao", model, indexed, seeds, seed=252, max_hops=31
    )


def test_perf_ic_run(benchmark, instance, bench_metrics):
    indexed, seeds = instance
    model = CompetitiveICModel(probability=0.1)
    rng = RngStream(53)
    counter = iter(range(10**9))

    def run_once():
        return model.run(indexed, seeds, rng=rng.replica(next(counter)), max_hops=31)

    result = benchmark(run_once)
    assert result.infected_count > 0
    _collect_counters(
        bench_metrics, "perf_ic", model, indexed, seeds, seed=253, max_hops=31
    )


def test_perf_lt_run(benchmark, instance, bench_metrics):
    indexed, seeds = instance
    model = CompetitiveLTModel()
    rng = RngStream(54)
    counter = iter(range(10**9))

    def run_once():
        return model.run(indexed, seeds, rng=rng.replica(next(counter)), max_hops=31)

    result = benchmark(run_once)
    assert result.infected_count > 0
    _collect_counters(
        bench_metrics, "perf_lt", model, indexed, seeds, seed=254, max_hops=31
    )


def test_perf_indexing_snapshot(benchmark):
    dataset = load_dataset("enron-small", scale=SCALE, seed=13)
    indexed = benchmark(dataset.graph.to_indexed)
    assert indexed.node_count == dataset.graph.node_count
