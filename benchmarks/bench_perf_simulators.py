"""Performance microbenchmarks of the diffusion engines.

Not a paper figure — these measure the substrate itself (runs/second of
each model on a replica-scale graph), using pytest-benchmark's real
multi-round statistics. Useful for catching performance regressions in
the hot loops the Monte-Carlo experiments hammer.
"""

import pytest

from benchmarks.conftest import SCALE
from repro.datasets.registry import load_dataset
from repro.diffusion.base import SeedSets
from repro.diffusion.doam import DOAMModel
from repro.diffusion.ic import CompetitiveICModel
from repro.diffusion.lt import CompetitiveLTModel
from repro.diffusion.opoao import OPOAOModel
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream


@pytest.fixture(scope="module")
def instance():
    dataset = load_dataset("enron-small", scale=SCALE, seed=13)
    indexed = dataset.graph.to_indexed()
    size = dataset.communities.size(dataset.rumor_community)
    rumor_labels = draw_rumor_seeds(
        dataset.communities,
        dataset.rumor_community,
        max(2, size // 10),
        RngStream(51, name="perf"),
    )
    rumors = indexed.indices(rumor_labels)
    # A handful of arbitrary protectors outside the rumor seeds.
    protectors = [i for i in range(indexed.node_count) if i not in set(rumors)][:5]
    return indexed, SeedSets(rumors=rumors, protectors=protectors)


def test_perf_doam_run(benchmark, instance):
    indexed, seeds = instance
    model = DOAMModel()
    result = benchmark(lambda: model.run(indexed, seeds, max_hops=64))
    assert result.infected_count > 0


def test_perf_opoao_run(benchmark, instance):
    indexed, seeds = instance
    model = OPOAOModel()
    rng = RngStream(52)
    counter = iter(range(10**9))

    def run_once():
        return model.run(indexed, seeds, rng=rng.replica(next(counter)), max_hops=31)

    result = benchmark(run_once)
    assert result.infected_count > 0


def test_perf_ic_run(benchmark, instance):
    indexed, seeds = instance
    model = CompetitiveICModel(probability=0.1)
    rng = RngStream(53)
    counter = iter(range(10**9))

    def run_once():
        return model.run(indexed, seeds, rng=rng.replica(next(counter)), max_hops=31)

    result = benchmark(run_once)
    assert result.infected_count > 0


def test_perf_lt_run(benchmark, instance):
    indexed, seeds = instance
    model = CompetitiveLTModel()
    rng = RngStream(54)
    counter = iter(range(10**9))

    def run_once():
        return model.run(indexed, seeds, rng=rng.replica(next(counter)), max_hops=31)

    result = benchmark(run_once)
    assert result.infected_count > 0


def test_perf_indexing_snapshot(benchmark):
    dataset = load_dataset("enron-small", scale=SCALE, seed=13)
    indexed = benchmark(dataset.graph.to_indexed)
    assert indexed.node_count == dataset.graph.node_count
