"""Fig. 5 — infected nodes under OPOAO, Enron e-mail network, small
rumor community.

Paper setting: |N|=36692, |C|=80, |B|=135; same protocol as Fig. 4.
Expected shape: blocking strategies below NoBlocking; Proximity and
MaxDegree close together (the paper attributes this to Enron's higher
density).
"""

from benchmarks.conftest import (
    assert_monotone_series,
    assert_noblocking_worst,
    figure_overrides,
)
from repro.experiments import paper_experiment, run_figure
from repro.experiments.report import figure_to_dict, render_figure


def test_fig5_opoao_enron_small(benchmark, report_result):
    config = paper_experiment("fig5").scaled(**figure_overrides())
    result = benchmark.pedantic(run_figure, args=(config,), rounds=1, iterations=1)
    report_result(render_figure(result), "fig5", figure_to_dict(result))

    assert_monotone_series(result.series)
    assert_noblocking_worst(result)
    assert result.rumor_seeds >= 1
    # Growth-rate observation of Section VI.B.2 holds here too.
    from repro.diffusion.analysis import is_growth_non_accelerating

    for name, series in result.series.items():
        assert is_growth_non_accelerating(series, tolerance=0.05), name
