"""Fig. 4 — infected nodes under OPOAO, Hep collaboration network.

Paper setting: |N|=15233, |C|=308, |B|=387; Greedy / Proximity /
MaxDegree with |P| = |R|, plus the NoBlocking line; 31 hops, repeated
Monte-Carlo averaging. Expected shape: every strategy far below
NoBlocking; Proximity strong early; Greedy catches up by the late hops;
per-hop growth never accelerates.
"""

from benchmarks.conftest import (
    assert_monotone_series,
    assert_noblocking_worst,
    figure_overrides,
)
from repro.experiments import paper_experiment, run_figure
from repro.experiments.report import figure_to_dict, render_figure


def test_fig4_opoao_hep(benchmark, report_result):
    config = paper_experiment("fig4").scaled(**figure_overrides())
    result = benchmark.pedantic(run_figure, args=(config,), rounds=1, iterations=1)
    report_result(render_figure(result), "fig4", figure_to_dict(result))

    assert set(result.series) == {"Greedy", "Proximity", "MaxDegree", "NoBlocking"}
    assert_monotone_series(result.series)
    assert_noblocking_worst(result)
    # |P| = |R| for every strategy (Section VI.B.2 protocol).
    for name in ("Greedy", "Proximity", "MaxDegree"):
        assert result.protectors_used[name] == result.rumor_seeds
    # "the relative increase speed ... does not increase" (Section VI.B.2).
    from repro.diffusion.analysis import is_growth_non_accelerating

    for name, series in result.series.items():
        assert is_growth_non_accelerating(series, tolerance=0.05), name
