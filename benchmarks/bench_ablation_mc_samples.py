"""Ablation — Monte-Carlo sample-count sensitivity of the σ estimator.

The paper does not report its repetition count; DESIGN.md records our
defaults as a substitution. This bench quantifies the estimator's
stability: for a fixed protector set, σ̂ is recomputed across disjoint
replica banks at several ``runs`` settings and the spread (sample stdev
of the bank means) is reported. The spread must shrink as runs grow —
the empirical justification for the defaults.
"""

from benchmarks.conftest import FAST, SCALE
from repro.algorithms.base import SelectionContext
from repro.algorithms.greedy import SigmaEstimator
from repro.algorithms.scbg import SCBGSelector
from repro.datasets.registry import load_dataset
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream
from repro.utils.stats import stdev
from repro.utils.tables import format_table


def _instance():
    dataset = load_dataset("hep", scale=SCALE, seed=13)
    size = dataset.communities.size(dataset.rumor_community)
    seeds = draw_rumor_seeds(
        dataset.communities,
        dataset.rumor_community,
        max(1, size // 20),
        RngStream(34, name="ablation-mc"),
    )
    return SelectionContext(dataset.graph, dataset.rumor_community_nodes, seeds)


def _bank_means(context, protectors, runs: int, banks: int):
    means = []
    for bank in range(banks):
        estimator = SigmaEstimator(
            context, runs=runs, rng=RngStream(35, name="bank").fork("bank", bank, runs)
        )
        means.append(estimator.sigma(protectors))
    return means


def test_ablation_mc_sample_sensitivity(benchmark, report_result):
    context = _instance()
    protectors = SCBGSelector().select(context)[:3]
    banks = 4 if FAST else 6
    runs_grid = (4, 16) if FAST else (5, 20, 60)

    def sweep():
        return {runs: _bank_means(context, protectors, runs, banks) for runs in runs_grid}

    by_runs = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    spreads = {}
    for runs, means in by_runs.items():
        spreads[runs] = stdev(means)
        rows.append(
            [runs, sum(means) / len(means), spreads[runs]]
        )
    text = format_table(
        ["runs per estimate", "mean sigma", "stdev across banks"],
        rows,
        title=f"Sigma estimator stability (|P|={len(protectors)}, banks={banks})",
    )
    report_result(text, "ablation_mc_samples")

    # More samples, less spread (allow slack for the tiny-bank regime).
    lowest, highest = min(runs_grid), max(runs_grid)
    assert spreads[highest] <= spreads[lowest] * 1.5 + 0.1
