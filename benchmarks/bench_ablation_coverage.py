"""Ablation — BBST coverage (Algorithm 3) vs exact blocking-aware coverage.

DESIGN.md calls out the BBST relaxation as a design choice: the
depth-bounded backward tree credits a candidate with every bridge end it
can reach in time, which is provably *sound* under DOAM P-priority but
can undercount rumor-delay effects. This bench measures, on a paper-scale
replica instance:

* the per-candidate coverage gap (exact minus claimed),
* the resulting SCBG solution sizes under both coverage backends,
* the wall-clock cost of exactness.
"""

from benchmarks.conftest import SCALE
from repro.algorithms.base import SelectionContext
from repro.algorithms.scbg import SCBGSelector
from repro.datasets.registry import load_dataset
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream
from repro.utils.tables import format_table


def _instance():
    dataset = load_dataset("hep", scale=SCALE, seed=13)
    size = dataset.communities.size(dataset.rumor_community)
    seeds = draw_rumor_seeds(
        dataset.communities,
        dataset.rumor_community,
        max(1, size // 20),
        RngStream(31, name="ablation-coverage"),
    )
    return SelectionContext(dataset.graph, dataset.rumor_community_nodes, seeds)


def test_ablation_bbst_vs_exact_coverage(benchmark, report_result):
    context = _instance()
    bbst = SCBGSelector(coverage="bbst")
    exact = SCBGSelector(coverage="exact")

    claimed = bbst.coverage_map(context)
    exact_map = benchmark.pedantic(
        exact.coverage_map, args=(context,), rounds=1, iterations=1
    )

    undercounts = 0
    for candidate, ends in claimed.items():
        bonus = exact_map.get(candidate, frozenset()) - ends
        if bonus:
            undercounts += 1
        # Soundness: everything claimed must be genuinely saved.
        assert ends <= exact_map.get(candidate, frozenset())
    bbst_cover = bbst.select(context)
    exact_cover = exact.select(context)

    rows = [
        ["candidates", len(claimed), len(exact_map)],
        ["cover size", len(bbst_cover), len(exact_cover)],
        ["candidates with rumor-delay bonus", undercounts, "-"],
    ]
    text = format_table(
        ["metric", "BBST", "exact"],
        rows,
        title=f"BBST vs blocking-aware coverage (|B|={len(context.bridge_ends)})",
    )
    report_result(text, "ablation_coverage")

    # The exact backend can only do as well or better on cover size.
    assert len(exact_cover) <= len(bbst_cover)
