"""Work-counter benchmark of the discrete-event gossip workload.

Measures the ISSUE-6 tentpole: :class:`repro.gossip.sim.GossipEngine`
replicas fanned out through :class:`repro.gossip.runner.GossipMonteCarlo`
on a seeded synthetic network. Every counter — replicas run, events
processed, node-rounds ticked, messages sent (by kind) — is a
deterministic function of the replica streams, so ``BENCH_gossip.json``
gates under ``benchmarks/check_regression.py`` exactly like the other
benches: a counter jump means the protocol is genuinely doing more work.

The run also asserts the workload's core contracts inline (serial vs
two-worker bit-identity, checkpoint/resume identity), so a perf pass
doubles as a correctness pass.
"""

from repro.gossip import GossipConfig, GossipMonteCarlo
from repro.graph.digraph import DiGraph
from repro.rng import RngStream

from benchmarks.conftest import FAST

#: Gossip replicas per protocol leg.
REPLICAS = 6 if FAST else 24

#: Nodes in the synthetic small-world network.
NODES = 60 if FAST else 200

#: Simulation horizon in rounds.
ROUNDS = 12 if FAST else 20


def build_network(seed: int = 29):
    """A seeded ring-with-chords digraph (bidirectional ring + skips)."""
    rng = RngStream(seed, name="bench-gossip-net")
    edges = []
    for node in range(NODES):
        edges.append((node, (node + 1) % NODES))
        edges.append(((node + 1) % NODES, node))
        edges.append((node, (node + rng.randrange(NODES - 2) + 2) % NODES))
    return DiGraph.from_edges(edges).to_indexed()


def test_gossip(bench_metrics, tmp_path):
    graph = build_network()
    rumors = [0, NODES // 2]
    protectors = [NODES // 4, (3 * NODES) // 4]
    configs = {
        "push": GossipConfig(
            protocol="push", fanout=2, rumor_budget=5, max_rounds=ROUNDS
        ),
        "push-pull": GossipConfig(
            protocol="push-pull",
            fanout=1,
            rumor_budget=4,
            stop_rule="lose-interest",
            stop_k=3,
            max_rounds=ROUNDS,
            anti_entropy_every=4,
        ),
    }

    aggregates = {}
    with bench_metrics.collect():
        for name, config in configs.items():
            runner = GossipMonteCarlo(config, runs=REPLICAS, processes=2)
            aggregates[name] = runner.run(
                graph,
                rumors,
                protectors,
                rng=RngStream(31, name=f"bench-gossip-{name}"),
            )

    # Contract checks outside collect(): they re-run replicas and must
    # not inflate the gated counters.
    for name, config in configs.items():
        serial = GossipMonteCarlo(config, runs=REPLICAS, processes=1)
        _, serial_records = serial.run_detailed(
            graph,
            rumors,
            protectors,
            rng=RngStream(31, name=f"bench-gossip-{name}"),
        )
        parallel = GossipMonteCarlo(config, runs=REPLICAS, processes=2)
        _, parallel_records = parallel.run_detailed(
            graph,
            rumors,
            protectors,
            rng=RngStream(31, name=f"bench-gossip-{name}"),
        )
        assert serial_records == parallel_records
        agg = aggregates[name]
        assert agg.replicas == REPLICAS
        assert agg.messages_total == sum(r.messages_total for r in serial_records)

    # Checkpoint/resume identity on the push leg.
    config = configs["push"]
    checkpoint = tmp_path / "gossip.ckpt"
    GossipMonteCarlo(
        config, runs=REPLICAS // 2, processes=1, checkpoint=checkpoint
    ).run(graph, rumors, protectors, rng=RngStream(31, name="bench-gossip-push"))
    from repro.exec.checkpoint import CheckpointStore

    resumed, resumed_records = GossipMonteCarlo(
        config,
        runs=REPLICAS,
        processes=1,
        checkpoint=CheckpointStore(checkpoint, resume=True),
    ).run_detailed(
        graph, rumors, protectors, rng=RngStream(31, name="bench-gossip-push")
    )
    full = GossipMonteCarlo(config, runs=REPLICAS, processes=1)
    _, full_records = full.run_detailed(
        graph, rumors, protectors, rng=RngStream(31, name="bench-gossip-push")
    )
    assert resumed_records == full_records

    counters = bench_metrics.registry.counter_values()
    assert counters["gossip.replicas"] == 2 * REPLICAS
    assert counters["gossip.messages"] > 0
    assert counters["gossip.events"] > 0

    bench_metrics.emit(
        "gossip",
        context={
            "replicas": REPLICAS,
            "nodes": NODES,
            "rounds": ROUNDS,
            "protocols": sorted(configs),
            "rumors": rumors,
            "protectors": protectors,
        },
    )
