"""Extension — LCRB under the competitive IC and LT models.

The paper's conclusion proposes studying LCRB "under other influence
diffusion models". The library's selectors are model-generic, so this
bench runs the Fig. 4 protocol (|P| = |R|, Greedy vs heuristics vs
NoBlocking) under the competitive Independent Cascade and competitive
Linear Threshold substrates and prints both series.
"""

import pytest

from benchmarks.conftest import (
    FAST,
    SCALE,
    assert_monotone_series,
    assert_noblocking_worst,
)
from repro.experiments.config import FigureConfig
from repro.experiments.harness import run_figure
from repro.experiments.report import figure_to_dict, render_figure


@pytest.mark.parametrize("model_key", ["ic", "lt"])
def test_extension_model_figure(benchmark, report_result, model_key):
    config = FigureConfig(
        name=f"ext-{model_key}",
        dataset="hep",
        model=model_key,
        rumor_fraction=0.05,
        hops=15,
        runs=10 if FAST else 40,
        draws=1,
        scale=SCALE,
        greedy_runs=4 if FAST else 6,
        greedy_max_candidates=50 if FAST else 100,
        title=f"Infected nodes under competitive {model_key.upper()} (extension)",
    )
    result = benchmark.pedantic(run_figure, args=(config,), rounds=1, iterations=1)
    report_result(render_figure(result), f"extension_{model_key}", figure_to_dict(result))

    assert_monotone_series(result.series)
    assert_noblocking_worst(result)
