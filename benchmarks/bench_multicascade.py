"""Work-counter benchmark of the K-cascade diffusion core.

Gates the K-cascade refactor's performance claim: K=2 sigma work through
the generalized engine must stay within the regression tolerance of the
two-cascade baseline. Every gated number is a ``sim.*`` work counter —
runs, rounds, activations — and therefore a deterministic function of
the seeded replica streams, so ``BENCH_multicascade.json`` compares
exactly under ``benchmarks/check_regression.py``; a counter jump means
the generalized core is genuinely doing more work per replica.

Three legs run inside the collected registry:

* **K=2 sigma** — the paper's two-cascade race (the pre-refactor
  workload) over ``REPLICAS`` IC replicas;
* **K=3 race** — the same replicas with the protector budget split into
  two uncoordinated campaigns;
* **scenarios** — one :class:`ImpressionScenario` scoring pass and one
  :class:`DistributedBlockingScenario` comparison on explicit seeds.

The run also asserts the refactor's compatibility contract inline
(``SeedSets`` vs an equivalent two-entry ``CascadeSet`` is bit-identical
states *and* trace), so a perf pass doubles as a correctness pass.
"""

from repro.algorithms.base import SelectionContext
from repro.diffusion.base import CascadeSet, SeedSets
from repro.diffusion.ic import CompetitiveICModel
from repro.graph.digraph import DiGraph
from repro.lcrb.multicascade import (
    DistributedBlockingScenario,
    ImpressionScenario,
)
from repro.rng import RngStream

from benchmarks.conftest import FAST

#: IC replicas per sigma leg.
REPLICAS = 40 if FAST else 160

#: Nodes in the synthetic ring-with-chords network.
NODES = 60 if FAST else 200

#: Horizon per run.
MAX_HOPS = 12

#: Scenario replicas (kept small: the sigma legs carry the gate).
SCENARIO_RUNS = 10 if FAST else 40


def build_network(seed: int = 37):
    """A seeded ring-with-chords digraph (bidirectional ring + skips).

    Nodes are pre-registered in id order so labels equal indexed ids.
    """
    rng = RngStream(seed, name="bench-multicascade-net")
    edges = []
    for node in range(NODES):
        edges.append((node, (node + 1) % NODES))
        edges.append(((node + 1) % NODES, node))
        edges.append((node, (node + rng.randrange(NODES - 2) + 2) % NODES))
    return DiGraph.from_edges(edges, nodes=range(NODES))


def run_replicas(model, graph, seeds, name):
    """Mean final rumor count over ``REPLICAS`` indexed replicas."""
    rng = RngStream(41, name=name)
    total = 0
    for replica in range(REPLICAS):
        outcome = model.run(
            graph, seeds, rng=rng.replica(replica), max_hops=MAX_HOPS
        )
        total += outcome.cascade_counts()[0]
    return total / REPLICAS


def test_multicascade(bench_metrics):
    digraph = build_network()
    graph = digraph.to_indexed()
    model = CompetitiveICModel(probability=0.12)
    rumors = [0, NODES // 2]
    protectors = [NODES // 4, (3 * NODES) // 4, NODES // 8, (7 * NODES) // 8]
    half = len(protectors) // 2
    two_cascade = SeedSets(rumors=rumors, protectors=protectors)
    three_cascade = CascadeSet([rumors, protectors[:half], protectors[half:]])

    context = SelectionContext(
        digraph,
        rumor_community=rumors,
        rumor_seeds=rumors,
        bridge_ends=[],
    )

    with bench_metrics.collect():
        k2_sigma = run_replicas(model, graph, two_cascade, "bench-mc-k2")
        k3_sigma = run_replicas(model, graph, three_cascade, "bench-mc-k3")

        impressions = ImpressionScenario(
            model,
            weights=[1.0, 1.0, 1.0],
            threshold=1.0,
            runs=SCENARIO_RUNS,
            max_hops=MAX_HOPS,
        ).run(context, [protectors[:half], protectors[half:]], RngStream(43))

        distributed = DistributedBlockingScenario(
            model,
            campaigns=2,
            budget=half,
            runs=SCENARIO_RUNS,
            max_hops=MAX_HOPS,
            campaign_seeds=[protectors[:half], protectors[half:]],
        ).run(context, RngStream(47))

    # Compatibility contract: SeedSets is literally the two-entry
    # CascadeSet — same states, same trace, same RNG consumption.
    flat = CascadeSet([rumors, protectors])
    stream = RngStream(53, name="bench-mc-compat")
    for replica in range(4):
        left = model.run(
            graph, two_cascade, rng=stream.replica(replica), max_hops=MAX_HOPS
        )
        right = model.run(
            graph, flat, rng=stream.replica(replica), max_hops=MAX_HOPS
        )
        assert left.states == right.states
        assert left.trace.series == right.trace.series

    # Splitting the same protector nodes into campaigns never changes
    # what the rumor can reach under positives-first priority — exact on
    # the deterministic model (the IC legs estimate the same quantity,
    # but with different draw orders, so they only agree in
    # distribution).
    from repro.diffusion.doam import DOAMModel

    doam = DOAMModel()
    assert (
        doam.run(graph, two_cascade, max_hops=MAX_HOPS).cascade_counts()[0]
        == doam.run(graph, three_cascade, max_hops=MAX_HOPS).cascade_counts()[0]
    )
    assert abs(k3_sigma - k2_sigma) < 0.25 * max(k2_sigma, 1.0)
    assert impressions.runs == SCENARIO_RUNS
    assert distributed.wasted_budget == 0

    counters = bench_metrics.registry.counter_values()
    # 2 sigma legs + the impression replicas + the distributed scenario's
    # two evaluations (K-cascade and centralized).
    assert counters["sim.runs"] == 2 * REPLICAS + 3 * SCENARIO_RUNS
    assert counters["sim.activations.infected"] > 0

    bench_metrics.emit(
        "multicascade",
        context={
            "replicas": REPLICAS,
            "nodes": NODES,
            "k2_sigma": k2_sigma,
            "k3_sigma": k3_sigma,
            "mean_dominated": impressions.mean_dominated,
            "price_of_noncooperation": distributed.price_of_noncooperation,
        },
    )
