"""RR-set sampling throughput of the batched sketch kernel backends.

Not a paper figure — this measures the ISSUE-9 tentpole directly:
worlds sampled per second through :func:`repro.sketch.sample_worlds` on
the enron-small replica, once per available backend. The two backends
replay the *same* seeded worlds (the kernels are bit-identical per
replica index, see :mod:`repro.sketch.kernels`), so their BENCH
documents carry identical ``sketch.*`` work counters and only the wall
clocks differ — ``BENCH_sketch_kernels_<backend>.json`` feeds the CI
regression gate while :func:`test_numpy_speedup_over_python` reproduces
the >=2x acceptance measurement in-process.
"""

import time

import pytest

from benchmarks.conftest import FAST, SCALE
from repro.algorithms.base import SelectionContext
from repro.datasets.registry import load_dataset
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream
from repro.sketch import available_sketch_backends, sample_worlds
from repro.sketch.rrset import OPOAORRSampler
from repro.sketch.store import SketchStore

#: Random worlds raced per pass (the serve default cold start is 64).
WORLDS = 6 if FAST else 16

#: OPOAO horizon, matching the simulator benchmarks.
STEPS = 31

#: Acceptance floor for the vectorized backend (ISSUE 9).
MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def instance():
    dataset = load_dataset("enron-small", scale=SCALE, seed=13)
    size = dataset.communities.size(dataset.rumor_community)
    rumor_labels = draw_rumor_seeds(
        dataset.communities,
        dataset.rumor_community,
        max(2, size // 10),
        RngStream(51, name="sketch-kernels-bench"),
    )
    return SelectionContext(
        dataset.graph, dataset.rumor_community_nodes, rumor_labels
    )


def make_sampler(context):
    return OPOAORRSampler(
        context.indexed,
        context.rumor_seed_ids(),
        context.bridge_end_ids(),
        steps=STEPS,
        rng=RngStream(13, name="sketch-kernels"),
    )


@pytest.mark.parametrize("backend_name", available_sketch_backends())
def test_sketch_kernels_sampling(benchmark, instance, bench_metrics,
                                 backend_name):
    # Timing pass under pytest-benchmark statistics: a fresh sampler so
    # the numpy backend pays its CSR build like a cold store would.
    benchmark.pedantic(
        lambda: sample_worlds(
            make_sampler(instance), range(WORLDS), backend=backend_name
        ),
        rounds=1,
        iterations=1,
    )

    # Deterministic counter pass for the regression gate: the kernels
    # are bit-identical per replica index, so both backends' documents
    # must carry the same sketch.* counters.
    with bench_metrics.collect():
        store = SketchStore(
            make_sampler(instance), backend=backend_name
        ).ensure_worlds(WORLDS)
    assert store.worlds == WORLDS
    bench_metrics.emit(
        f"sketch_kernels_{backend_name}",
        context={
            "backend": backend_name,
            "worlds": WORLDS,
            "steps": STEPS,
            "dataset": "enron-small",
        },
    )


def test_numpy_speedup_over_python(instance, report_result):
    """The acceptance measurement: numpy >= 2x python on enron-small."""
    if "numpy" not in available_sketch_backends():
        pytest.skip("numpy backend unavailable")

    sampled = {}
    timings = {}
    for backend_name in ("python", "numpy"):
        started = time.perf_counter()
        sampled[backend_name] = sample_worlds(
            make_sampler(instance), range(WORLDS), backend=backend_name
        )
        timings[backend_name] = time.perf_counter() - started

    # Same worlds bit-for-bit, or the speedup is measuring the wrong thing.
    for reference, vectorized in zip(sampled["python"], sampled["numpy"]):
        assert vectorized.index == reference.index
        assert vectorized.rr_sets == reference.rr_sets
        assert vectorized.footprint == reference.footprint

    speedup = timings["python"] / max(timings["numpy"], 1e-9)
    text = (
        f"sketch kernels, enron-small scale={SCALE}, "
        f"{WORLDS} worlds, steps={STEPS}\n"
        f"  python {timings['python']:.3f}s  "
        f"numpy {timings['numpy']:.3f}s  speedup {speedup:.2f}x"
    )
    report_result(
        text,
        "sketch_kernels_speedup",
        payload={
            "dataset": "enron-small",
            "scale": SCALE,
            "worlds": WORLDS,
            "steps": STEPS,
            "python_seconds": timings["python"],
            "numpy_seconds": timings["numpy"],
            "speedup": speedup,
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"numpy sampling speedup {speedup:.2f}x < {MIN_SPEEDUP}x over python"
    )
