"""Fig. 6 — infected nodes under OPOAO, Enron e-mail network, large
rumor community.

Paper setting: |N|=36692, |C|=2631, |B|=2250; same protocol as Fig. 4.
The community is large and dense, so rumor pressure is highest here.
"""

from benchmarks.conftest import (
    assert_monotone_series,
    assert_noblocking_worst,
    figure_overrides,
)
from repro.experiments import paper_experiment, run_figure
from repro.experiments.report import figure_to_dict, render_figure


def test_fig6_opoao_enron_large(benchmark, report_result):
    config = paper_experiment("fig6").scaled(**figure_overrides())
    result = benchmark.pedantic(run_figure, args=(config,), rounds=1, iterations=1)
    report_result(render_figure(result), "fig6", figure_to_dict(result))

    assert_monotone_series(result.series)
    assert_noblocking_worst(result)
    # Late-stage flattening (Section VI.B.2): the final 10% of hops add
    # less than the first 10% for the NoBlocking line.
    series = result.series["NoBlocking"]
    tenth = max(1, len(series) // 10)
    early_growth = series[tenth] - series[0]
    late_growth = series[-1] - series[-1 - tenth]
    assert late_growth <= early_growth + 1e-9
    # Growth-rate observation of Section VI.B.2.
    from repro.diffusion.analysis import is_growth_non_accelerating

    for name, values in result.series.items():
        assert is_growth_non_accelerating(values, tolerance=0.05), name
