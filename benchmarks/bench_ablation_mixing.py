"""Ablation — how community strength drives rumor-blocking cost.

DESIGN.md's substitution argument says the algorithms are sensitive to one
generator statistic above all: the cross-community ``mixing`` fraction
(Section IV: sparse boundaries are what make bridge-end protection cheap).
This bench sweeps mixing and reports bridge-end counts and protector
costs; the cost of containment must rise as communities blur.
"""

from benchmarks.conftest import FAST
from repro.experiments.sweep import mixing_sweep
from repro.utils.tables import format_table


def test_ablation_mixing_sweep(benchmark, report_result):
    mixings = (0.05, 0.20) if FAST else (0.02, 0.05, 0.10, 0.20, 0.35)
    rows = benchmark.pedantic(
        mixing_sweep,
        kwargs={
            "mixings": mixings,
            "nodes": 600 if FAST else 1500,
            "draws": 2 if FAST else 3,
        },
        rounds=1,
        iterations=1,
    )

    table_rows = [
        [
            f"{row['value']:.2f}",
            row["boundary_edges"],
            row["bridge_ends"],
            row["scbg_protectors"],
            row["proximity_protectors"],
        ]
        for row in rows
    ]
    text = format_table(
        ["mixing", "boundary edges", "|B|", "SCBG |P|", "Proximity |P|"],
        table_rows,
        title="Community-mixing ablation (Section IV premise)",
    )
    report_result(text, "ablation_mixing")

    # Stronger mixing -> more escape routes -> more bridge ends and a
    # costlier SCBG cover (compare the sweep's endpoints).
    first, last = rows[0], rows[-1]
    assert last["bridge_ends"] >= first["bridge_ends"]
    assert last["scbg_protectors"] >= first["scbg_protectors"]
