"""Robustness — does SCBG's advantage survive adversarial rumor placement?

The paper places rumor originators uniformly in the community. This bench
re-runs the Table-I-style comparison under four placement strategies —
uniform (paper), hubs (influencer-started), boundary (one hop from the
bridge ends), deep (interior only) — and checks SCBG still produces the
cheapest full-protection solution in every regime.
"""

from benchmarks.conftest import FAST, SCALE
from repro.algorithms.base import SelectionContext
from repro.algorithms.heuristics import ProximitySelector
from repro.algorithms.scbg import SCBGSelector
from repro.datasets.registry import load_dataset
from repro.lcrb.scenarios import PLACEMENTS, place_rumors
from repro.rng import RngStream
from repro.utils.stats import RunningStats
from repro.utils.tables import format_table


def test_robustness_rumor_placement(benchmark, report_result):
    dataset = load_dataset("hep", scale=SCALE, seed=13)
    size = dataset.communities.size(dataset.rumor_community)
    rumor_count = max(2, size // 20)
    draws = 3 if FAST else 6
    rng = RngStream(71, name="robustness")

    def sweep():
        rows = []
        for strategy in sorted(PLACEMENTS):
            bridge = RunningStats()
            scbg_size = RunningStats()
            proximity_size = RunningStats()
            for draw in range(draws):
                draw_rng = rng.fork(strategy, draw)
                seeds = place_rumors(
                    dataset.communities,
                    dataset.rumor_community,
                    rumor_count,
                    strategy=strategy,
                    rng=draw_rng.fork("seeds"),
                )
                context = SelectionContext(
                    dataset.graph, dataset.rumor_community_nodes, seeds
                )
                if not context.bridge_ends:
                    continue
                bridge.add(len(context.bridge_ends))
                scbg_size.add(len(SCBGSelector().select(context)))
                proximity_size.add(
                    len(
                        ProximitySelector(rng=draw_rng.fork("prox")).select(context)
                    )
                )
            rows.append(
                {
                    "strategy": strategy,
                    "bridge_ends": bridge.mean,
                    "scbg": scbg_size.mean,
                    "proximity": proximity_size.mean,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table_rows = [
        [row["strategy"], row["bridge_ends"], row["scbg"], row["proximity"]]
        for row in rows
    ]
    text = format_table(
        ["placement", "|B|", "SCBG |P|", "Proximity |P|"],
        table_rows,
        title=f"Rumor-placement robustness (|R|={rumor_count}, draws={draws})",
    )
    report_result(text, "robustness_placement")

    # SCBG stays at or below Proximity under every placement regime.
    for row in rows:
        assert row["scbg"] <= row["proximity"] + 1e-9, row["strategy"]
