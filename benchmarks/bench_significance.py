"""Statistical resolution of the headline OPOAO comparison.

The paper's figures present mean curves without error bars; this bench
backs the central ordinal claims — Greedy ends below each heuristic, and
every blocker ends below NoBlocking — with bootstrap confidence intervals
over per-replica final infected counts, reporting whether each comparison
is resolved by the Monte-Carlo sample size used.
"""

from benchmarks.conftest import FAST, SCALE
from repro.algorithms.base import SelectionContext
from repro.algorithms.celf import CELFGreedySelector
from repro.algorithms.heuristics import MaxDegreeSelector, ProximitySelector
from repro.datasets.registry import load_dataset
from repro.diffusion.opoao import OPOAOModel
from repro.lcrb.evaluation import compare_evaluations, evaluate_protectors
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.rng import RngStream
from repro.utils.tables import format_table


def test_significance_of_opoao_claims(benchmark, report_result):
    rng = RngStream(101, name="significance")
    dataset = load_dataset("hep", scale=SCALE, seed=13)
    size = dataset.communities.size(dataset.rumor_community)
    seeds = draw_rumor_seeds(
        dataset.communities,
        dataset.rumor_community,
        max(2, size // 20),
        rng.fork("seeds"),
    )
    context = SelectionContext(dataset.graph, dataset.rumor_community_nodes, seeds)
    budget = len(context.rumor_seeds)
    runs = 40 if FAST else 150
    hops = 20 if FAST else 31

    def evaluate_all():
        assignments = {
            "Greedy": CELFGreedySelector(
                runs=4 if FAST else 8,
                max_candidates=60 if FAST else 150,
                rng=rng.fork("greedy"),
            ).select(context, budget=budget),
            "Proximity": ProximitySelector(rng=rng.fork("prox")).select(
                context, budget=budget
            ),
            "MaxDegree": MaxDegreeSelector().select(context, budget=budget),
            "NoBlocking": [],
        }
        return {
            name: evaluate_protectors(
                context,
                protectors,
                OPOAOModel(),
                runs=runs,
                max_hops=hops,
                rng=rng.fork("eval", name),
            )
            for name, protectors in assignments.items()
        }

    evaluations = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)

    claims = [
        ("Greedy", "NoBlocking"),
        ("Proximity", "NoBlocking"),
        ("MaxDegree", "NoBlocking"),
        ("Greedy", "Proximity"),
        ("Greedy", "MaxDegree"),
    ]
    rows = []
    verdicts = {}
    for left, right in claims:
        verdict = compare_evaluations(
            evaluations[left], evaluations[right], rng.fork("boot", left, right)
        )
        verdicts[(left, right)] = verdict
        lo, hi = verdict["ci"]
        rows.append(
            [
                f"{left} < {right}",
                verdict["observed_diff"],
                f"[{lo:.1f}, {hi:.1f}]",
                f"{verdict['p_left_better']:.2f}",
                "yes" if verdict["resolved"] else "no",
            ]
        )
    text = format_table(
        ["claim", "mean diff", "95% CI", "P(left better)", "resolved"],
        rows,
        title=f"Bootstrap resolution of OPOAO claims (runs={runs}, hops={hops})",
    )
    report_result(text, "significance")

    # The versus-NoBlocking claims must be decisively resolved.
    for left in ("Greedy", "Proximity", "MaxDegree"):
        verdict = verdicts[(left, "NoBlocking")]
        assert verdict["resolved"] and verdict["observed_diff"] < 0, left
