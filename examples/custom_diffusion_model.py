#!/usr/bin/env python3
"""Extending the library: plug in your own diffusion model.

The paper's conclusion suggests studying LCRB "under other influence
diffusion models". Every component of this library — the σ estimator, the
greedy/CELF selectors, the evaluator — is generic over
:class:`repro.diffusion.base.DiffusionModel`, so a new model is one class.

This example implements a **Fanout-k** model (each newly active node
activates up to ``k`` random inactive out-neighbors — interpolating
between OPOAO's k=1-per-step and DOAM's k=∞-once), then runs the full
LCRB pipeline under it.

Run:  python examples/custom_diffusion_model.py
"""

from typing import List, Optional, Set

from repro import (
    CELFGreedySelector,
    RngStream,
    SelectionContext,
    evaluate_protectors,
)
from repro.datasets import hep_like
from repro.diffusion.base import (
    INACTIVE,
    INFECTED,
    PROTECTED,
    DiffusionModel,
    SeedSets,
)
from repro.diffusion.trace import HopTrace
from repro.graph.compact import IndexedDiGraph
from repro.lcrb.pipeline import detect_communities, draw_rumor_seeds


class FanoutKModel(DiffusionModel):
    """Each newly active node activates up to ``k`` random inactive
    out-neighbors on the following step (single chance), P wins ties."""

    stochastic = True

    def __init__(self, k: int = 2) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.name = f"Fanout-{k}"

    def _spread(
        self,
        graph: IndexedDiGraph,
        states: List[int],
        seeds: SeedSets,
        trace: HopTrace,
        rng: Optional[RngStream],
        max_hops: int,
    ) -> None:
        assert rng is not None
        protected_front = sorted(seeds.protectors)
        infected_front = sorted(seeds.rumors)

        def targets_of(front: List[int]) -> Set[int]:
            chosen: Set[int] = set()
            for node in front:
                inactive = [n for n in graph.out[node] if states[n] == INACTIVE]
                if not inactive:
                    continue
                picks = (
                    inactive
                    if len(inactive) <= self.k
                    else rng.sample(inactive, self.k)
                )
                chosen.update(picks)
            return chosen

        for _hop in range(max_hops):
            if not protected_front and not infected_front:
                break
            protected_targets = targets_of(protected_front)
            infected_targets = targets_of(infected_front) - protected_targets
            if not protected_targets and not infected_targets:
                break
            new_protected = sorted(protected_targets)
            new_infected = sorted(infected_targets)
            for node in new_protected:
                states[node] = PROTECTED
            for node in new_infected:
                states[node] = INFECTED
            trace.record(new_infected, new_protected)
            protected_front = new_protected
            infected_front = new_infected


def main() -> None:
    rng = RngStream(5, name="custom-model")
    network = hep_like(scale=0.05, rng=rng.fork("net"))
    graph = network.graph
    communities = detect_communities(graph, rng=rng.fork("louvain"))
    rumor_community = communities.largest_communities(1)[0]
    seeds = draw_rumor_seeds(communities, rumor_community, 3, rng.fork("seeds"))
    context = SelectionContext(graph, communities.members(rumor_community), seeds)
    print(
        f"instance: |C|={communities.size(rumor_community)} "
        f"|S_R|={len(seeds)} |B|={len(context.bridge_ends)}"
    )

    for k in (1, 2, 4):
        model = FanoutKModel(k=k)
        # The generic greedy selector works unchanged under the new model.
        selector = CELFGreedySelector(
            model=model, runs=6, max_candidates=50, rng=rng.fork("greedy", k)
        )
        protectors = selector.select(context, budget=len(seeds))
        report = evaluate_protectors(
            context, protectors, model, runs=40, rng=rng.fork("eval", k)
        )
        print(
            f"{model.name}: greedy protectors={protectors} -> "
            f"final infected {report.final_infected_mean:.1f}, "
            f"bridge ends safe {report.protected_bridge_fraction:.0%}"
        )
    print("\nHigher fanout spreads the rumor faster, but the same pipeline")
    print("(bridge ends -> sigma estimation -> CELF greedy) contains it.")


if __name__ == "__main__":
    main()
