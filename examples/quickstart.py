#!/usr/bin/env python3
"""Quickstart: block a rumor on a small synthetic social network.

Walks the paper's whole pipeline in ~40 lines of library calls:

1. generate a community-structured network,
2. detect communities with Louvain (as the paper does),
3. pick a rumor community and originators,
4. find the bridge ends (RFST stage),
5. select protectors with SCBG (LCRB-D) and evaluate under DOAM,
6. select protectors with greedy (LCRB-P) and evaluate under OPOAO.

Run:  python examples/quickstart.py
"""

from repro import (
    CELFGreedySelector,
    DOAMModel,
    OPOAOModel,
    RngStream,
    SCBGSelector,
    build_context,
    evaluate_protectors,
)
from repro.datasets import enron_like
from repro.graph.metrics import summarize


def main() -> None:
    rng = RngStream(7, name="quickstart")

    # 1. A directed social network with planted community structure.
    network = enron_like(scale=0.03, rng=rng.fork("net"))
    graph = network.graph
    print(summarize(graph))

    # 2-4. Louvain detection, rumor community, seeds, bridge ends.
    context, communities, rumor_community = build_context(
        graph, rumor_fraction=0.05, rng=rng.fork("pipeline")
    )
    print(
        f"rumor community {rumor_community}: |C|={communities.size(rumor_community)}, "
        f"|S_R|={len(context.rumor_seeds)}, bridge ends |B|={len(context.bridge_ends)}"
    )

    # 5. LCRB-D: cover every bridge end with the fewest protectors (SCBG).
    scbg = SCBGSelector().select(context)
    doam_report = evaluate_protectors(context, scbg, DOAMModel(), runs=1)
    print(
        f"SCBG: |P|={len(scbg)} protectors; under DOAM the rumor infects "
        f"{doam_report.final_infected_mean:.0f} nodes and "
        f"{doam_report.protected_bridge_fraction:.0%} of bridge ends stay safe"
    )

    # 6. LCRB-P: protect an alpha fraction under the slow OPOAO dynamics.
    greedy = CELFGreedySelector(
        alpha=0.7, runs=10, max_candidates=60, rng=rng.fork("greedy")
    )
    protectors = greedy.select(context)
    opoao_report = evaluate_protectors(
        context, protectors, OPOAOModel(), runs=100, rng=rng.fork("eval")
    )
    print(
        f"Greedy (alpha=0.7): |P|={len(protectors)} protectors; under OPOAO "
        f"{opoao_report.protected_bridge_fraction:.0%} of bridge ends stay safe "
        f"({opoao_report.final_infected_mean:.1f} nodes infected on average)"
    )


if __name__ == "__main__":
    main()
