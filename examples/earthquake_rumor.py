#!/usr/bin/env python3
"""Scenario: contain a fast-spreading panic rumor (the paper's Ghazni case).

The paper's introduction motivates LCRB-D with a 2012 earthquake rumor
that emptied whole neighborhoods overnight — a *broadcast*-style spread
(everyone warns all their contacts at once), which is exactly the DOAM
model. The question for the platform operator: **who is the cheapest set
of accounts to seed with the official correction so the rumor never
escapes its originating community?**

This example compares the cost (number of protector accounts) and the
outcome (population infected) of SCBG against the MaxDegree and Proximity
heuristics over several rumor sizes, printing a Table-I-style summary.

Run:  python examples/earthquake_rumor.py
"""

from repro import (
    DOAMModel,
    MaxDegreeSelector,
    ProximitySelector,
    RngStream,
    SCBGSelector,
    SelectionContext,
    evaluate_protectors,
)
from repro.datasets import hep_like
from repro.lcrb.pipeline import detect_communities, draw_rumor_seeds
from repro.utils.tables import format_table


def main() -> None:
    rng = RngStream(42, name="earthquake")

    network = hep_like(scale=0.08, rng=rng.fork("net"))
    graph = network.graph
    communities = detect_communities(graph, rng=rng.fork("louvain"))
    rumor_community = communities.largest_communities(1)[0]
    community_size = communities.size(rumor_community)
    print(
        f"network: {graph.node_count} people, {graph.edge_count} ties; "
        f"rumor starts in community {rumor_community} ({community_size} members)"
    )

    rows = []
    for fraction in (0.02, 0.05, 0.10):
        rumor_count = max(1, round(fraction * community_size))
        seeds = draw_rumor_seeds(
            communities, rumor_community, rumor_count, rng.fork("seeds", fraction)
        )
        context = SelectionContext(
            graph, communities.members(rumor_community), seeds
        )

        selectors = {
            "SCBG": SCBGSelector(),
            "Proximity": ProximitySelector(rng=rng.fork("prox", fraction)),
            "MaxDegree": MaxDegreeSelector(),
        }
        for name, selector in selectors.items():
            protectors = selector.select(context)  # full LCRB-D solution
            report = evaluate_protectors(context, protectors, DOAMModel(), runs=1)
            rows.append(
                [
                    f"{fraction:.0%}",
                    name,
                    len(context.bridge_ends),
                    len(protectors),
                    report.final_infected_mean,
                    f"{report.protected_bridge_fraction:.0%}",
                ]
            )

    print(
        format_table(
            ["|R|/|C|", "algorithm", "|B|", "|P| needed", "infected", "bridge ends safe"],
            rows,
            title="Cost of guaranteeing full bridge-end protection (DOAM)",
        )
    )
    print(
        "\nSCBG reaches full protection with the fewest seeded corrections;\n"
        "Proximity needs one protector per escape route, MaxDegree wastes\n"
        "budget on hubs far from the rumor."
    )


if __name__ == "__main__":
    main()
