#!/usr/bin/env python3
"""Scenario: blocking a rumor that spreads by gossip, not by cascade.

The paper's models advance whole frontiers one hop per step. In a
gossip deployment (push rumor mongering, Demers/Karp style) every node
instead contacts one random peer per round, pays per message, and loses
interest once the rumor stops being news — so a protector set is judged
on a different axis: how many *messages* the network spends versus how
many nodes the rumor still reaches.

This example draws an LCRB instance on a synthetic Enron-like network,
then runs the gossip blocking study: no blocking, Random, and MaxDegree
protector sets under a push protocol with the lose-interest stop rule,
printing the messages-sent versus final-infected table and the
per-round infection curves.

Run:  python examples/gossip_blocking.py
"""

from repro import MaxDegreeSelector, RngStream, SelectionContext
from repro.algorithms.heuristics import RandomSelector
from repro.datasets import enron_like
from repro.gossip import GossipConfig
from repro.lcrb.gossip_blocking import GossipBlockingScenario
from repro.lcrb.pipeline import detect_communities, draw_rumor_seeds
from repro.utils.tables import format_series

REPLICAS = 30
PROTECTOR_BUDGET = 3


def main() -> None:
    rng = RngStream(77, name="gossip-example")

    network = enron_like(scale=0.04, rng=rng.fork("net"))
    graph = network.graph
    communities = detect_communities(graph, rng=rng.fork("louvain"))
    rumor_community = communities.largest_communities(1)[0]
    size = communities.size(rumor_community)
    rumor_count = max(2, round(0.05 * size))
    seeds = draw_rumor_seeds(communities, rumor_community, rumor_count, rng.fork("s"))
    context = SelectionContext(graph, communities.members(rumor_community), seeds)
    print(
        f"{graph.node_count} nodes; rumor community of {size} with "
        f"|S_R|={len(context.rumor_seeds)}; protector budget "
        f"|P|={PROTECTOR_BUDGET}"
    )

    config = GossipConfig(
        protocol="push",
        fanout=2,
        rumor_budget=6,
        stop_rule="lose-interest",
        stop_k=3,
        max_rounds=25,
        protector_delay=2.0,
    )
    scenario = GossipBlockingScenario(
        config, runs=REPLICAS, budget=PROTECTOR_BUDGET
    )
    selectors = {
        "none": None,
        "random": RandomSelector(rng=rng.fork("sel", "random")),
        "maxdegree": MaxDegreeSelector(),
    }
    result = scenario.run(context, rng.fork("study"), selectors=selectors)

    print()
    print(result.to_table())
    print()
    curves = {
        row.strategy: [round(value, 1) for value in row.infected_series]
        for row in result.rows
    }
    print(format_series(curves, x_label="round", title="mean infected per round"))
    baseline = result.row("none")
    best = min(result.rows[1:], key=lambda row: row.mean_infected)
    saved = baseline.mean_infected - best.mean_infected
    print(
        f"\nbest strategy: {best.strategy} — saves {saved:.1f} nodes per "
        f"replica at ~{best.mean_messages:.0f} messages "
        f"(baseline {baseline.mean_messages:.0f})"
    )


if __name__ == "__main__":
    main()
