#!/usr/bin/env python3
"""Scenario: locate the rumor's originator from an infected snapshot.

The paper's conclusion points at source detection as the natural follow-up
problem ("it is hard to quickly detect rumors in the first place"). This
example spreads a DOAM rumor from a hidden originator, observes only the
final infected snapshot, and compares the three classical estimators —
distance center, Jordan center, and Shah-Zaman rumor centrality — on how
close they land to the true source.

Run:  python examples/locate_rumor_source.py
"""

from repro import DOAMModel, RngStream, SeedSets
from repro.algorithms.source_detection import estimate_sources
from repro.datasets import hep_like
from repro.diffusion.base import INFECTED
from repro.graph.traversal import shortest_hop_distance
from repro.utils.tables import format_table

TRIALS = 10
SPREAD_HOPS = 4


def main() -> None:
    rng = RngStream(2024, name="source-detection")
    network = hep_like(scale=0.04, rng=rng.fork("net"))
    graph = network.graph
    indexed = graph.to_indexed()
    nodes = list(graph.nodes())
    print(f"network: {graph.node_count} nodes, {graph.edge_count} edges")

    methods = ("distance", "jordan", "rumor")
    hop_errors = {method: [] for method in methods}
    exact_hits = {method: 0 for method in methods}

    for trial in range(TRIALS):
        source = rng.fork("source", trial).choice(nodes)
        outcome = DOAMModel().run(
            indexed,
            SeedSets(rumors=[indexed.index(source)]),
            max_hops=SPREAD_HOPS,
        )
        infected = [
            indexed.labels[i]
            for i, state in enumerate(outcome.states)
            if state == INFECTED
        ]
        if len(infected) < 5:
            continue  # isolated source; uninformative snapshot
        for method in methods:
            (estimate,) = estimate_sources(graph, infected, method=method)
            hops = shortest_hop_distance(graph, estimate, source)
            if hops is None:
                hops = shortest_hop_distance(graph, source, estimate) or 99
            hop_errors[method].append(hops)
            if estimate == source:
                exact_hits[method] += 1

    rows = []
    for method in methods:
        errors = hop_errors[method]
        rows.append(
            [
                method,
                len(errors),
                exact_hits[method],
                sum(errors) / len(errors) if errors else float("nan"),
                max(errors) if errors else 0,
            ]
        )
    print(
        format_table(
            ["estimator", "snapshots", "exact hits", "mean hop error", "worst"],
            rows,
            title=f"Source detection over {TRIALS} hidden-source DOAM spreads",
        )
    )
    print(
        "\nAll three estimators localise the originator to within a couple of\n"
        "hops — enough to seed protectors around the right community."
    )


if __name__ == "__main__":
    main()
