#!/usr/bin/env python3
"""Scenario: slow word-of-mouth misinformation with a limited fact-check budget.

The paper's OPOAO model captures person-to-person messaging: each account
forwards to *one* contact per step, so both the rumor and the correction
crawl through the network. The operator can only seed as many fact-check
accounts as there are rumor accounts (|P| = |R|, the paper's Fig. 4-6
protocol). Which accounts should get the correction?

This example pits the paper's Greedy (CELF-accelerated) against the
Proximity and MaxDegree heuristics and a NoBlocking baseline, printing
the infected-population trajectory over 31 hops — the same series the
paper plots.

Run:  python examples/viral_misinformation.py
"""

from repro import (
    CELFGreedySelector,
    MaxDegreeSelector,
    OPOAOModel,
    ProximitySelector,
    RngStream,
    SelectionContext,
    evaluate_protectors,
)
from repro.datasets import enron_like
from repro.lcrb.pipeline import detect_communities, draw_rumor_seeds
from repro.utils.tables import format_series

HOPS = 31
MONTE_CARLO_RUNS = 60


def main() -> None:
    rng = RngStream(99, name="viral")

    network = enron_like(scale=0.05, rng=rng.fork("net"))
    graph = network.graph
    communities = detect_communities(graph, rng=rng.fork("louvain"))
    rumor_community = communities.largest_communities(2)[1]
    size = communities.size(rumor_community)
    rumor_count = max(2, round(0.05 * size))
    seeds = draw_rumor_seeds(communities, rumor_community, rumor_count, rng.fork("s"))
    context = SelectionContext(graph, communities.members(rumor_community), seeds)
    budget = len(context.rumor_seeds)
    print(
        f"{graph.node_count} accounts; rumor community of {size} with "
        f"|S_R|={budget}; fact-check budget |P|={budget}; |B|={len(context.bridge_ends)}"
    )

    strategies = {
        "Greedy": CELFGreedySelector(
            runs=8, max_candidates=120, rng=rng.fork("greedy")
        ).select(context, budget=budget),
        "Proximity": ProximitySelector(rng=rng.fork("prox")).select(
            context, budget=budget
        ),
        "MaxDegree": MaxDegreeSelector().select(context, budget=budget),
        "NoBlocking": [],
    }

    series = {}
    for name, protectors in strategies.items():
        report = evaluate_protectors(
            context,
            protectors,
            OPOAOModel(),
            runs=MONTE_CARLO_RUNS,
            max_hops=HOPS,
            rng=rng.fork("eval", name),
        )
        series[name] = [round(v, 1) for v in report.infected_per_hop]

    print(format_series(series, x_label="hop", title="Mean infected accounts per hop"))
    finals = {name: values[-1] for name, values in series.items()}
    best = min(finals, key=finals.get)
    print(
        f"\nAfter {HOPS} hops: "
        + ", ".join(f"{name}={value:.1f}" for name, value in finals.items())
    )
    print(f"Best containment: {best}")


if __name__ == "__main__":
    main()
