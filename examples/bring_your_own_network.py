#!/usr/bin/env python3
"""Scenario: run the pipeline on your own edge-list data.

Everything in this library also works on real data: point
``repro.datasets.external.load_external`` at a SNAP-style edge list (the
format the paper's Enron/Hep files ship in), and the whole pipeline —
Louvain detection, bridge ends, SCBG, evaluation — runs unchanged.

Since this example must run offline, it first *writes* a network to disk
(as if you had downloaded it), then loads it back through the external
loader, inspects the instance, blocks the rumor, and renders the
infected-per-hop curves as a terminal chart (the paper's figures use
log-scale plots; so does the chart).

Run:  python examples/bring_your_own_network.py
"""

import tempfile
from pathlib import Path

from repro import (
    DOAMModel,
    RngStream,
    SCBGSelector,
    SelectionContext,
    evaluate_protectors,
)
from repro.datasets import enron_like
from repro.datasets.external import load_external
from repro.graph.io import write_communities, write_edge_list
from repro.lcrb.pipeline import draw_rumor_seeds
from repro.lcrb.report import build_instance_report, render_instance_report
from repro.utils.ascii_chart import line_chart


def main() -> None:
    rng = RngStream(314, name="byon")

    with tempfile.TemporaryDirectory() as workdir:
        # --- pretend this is your downloaded dataset -----------------------
        network = enron_like(scale=0.04, rng=rng.fork("net"))
        edge_path = Path(workdir) / "my-network.txt"
        community_path = Path(workdir) / "my-network.communities"
        write_edge_list(network.graph, edge_path)
        write_communities(network.membership, community_path)
        print(f"wrote {edge_path.name}: {network.graph.edge_count} edges")

        # --- load it back exactly as you would real data -------------------
        dataset = load_external(
            edge_path,
            name="my-network",
            communities_path=community_path,  # omit to Louvain-detect
        )
        seeds = draw_rumor_seeds(
            dataset.communities,
            dataset.rumor_community,
            max(2, dataset.communities.size(dataset.rumor_community) // 20),
            rng.fork("seeds"),
        )
        context = SelectionContext(
            dataset.graph, dataset.rumor_community_nodes, seeds
        )

        print("\n--- instance diagnostics ---")
        print(render_instance_report(build_instance_report(context)))

        # --- block and evaluate --------------------------------------------
        protectors = SCBGSelector().select(context)
        blocked = evaluate_protectors(context, protectors, DOAMModel(), runs=1)
        unblocked = evaluate_protectors(context, [], DOAMModel(), runs=1)
        print(
            f"\nSCBG seeded {len(protectors)} protector(s): "
            f"{blocked.final_infected_mean:.0f} infected vs "
            f"{unblocked.final_infected_mean:.0f} with no blocking"
        )
        hops = 8
        print(
            line_chart(
                {
                    "SCBG": blocked.infected_per_hop[: hops + 1],
                    "NoBlocking": unblocked.infected_per_hop[: hops + 1],
                },
                height=10,
                log_scale=True,
                title="Infected nodes per step (log scale)",
            )
        )


if __name__ == "__main__":
    main()
